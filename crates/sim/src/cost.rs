//! The BSP / alpha-beta cost model used to charge simulated time.
//!
//! The paper analyses HSS in the bulk synchronous parallel (BSP) model of
//! Valiant (§5.1), characterised by `T_I` — the unit computational time —
//! and `T_c` — the time to communicate one unit (word) of data.  On top of
//! that the paper distinguishes *binomial* and *pipelined* implementations of
//! the broadcast / reduction collectives:
//!
//! * binomial tree: a message of `S` words costs `O(S log p)`;
//! * pipelined: the message is chopped into fragments and streamed down a
//!   chain/tree, costing `O(S + log p)` — the right choice for large `S`
//!   and large `p` and the one assumed by Table 5.1.
//!
//! [`CostModel`] turns message sizes and operation counts into simulated
//! seconds so experiments at `p` far beyond the host's core count still show
//! the right *scaling shape*.  The default constants are calibrated loosely
//! to a Blue Gene/Q class machine (a few GB/s of injection bandwidth per
//! node, a few microseconds of latency, ~1 ns per comparison) — absolute
//! values are irrelevant for the reproduction, ratios are what matter.

use serde::{Deserialize, Serialize};

/// Which algorithm the simulated runtime uses for rooted collectives
/// (broadcast, reduction, gather of equal contributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveAlgo {
    /// Binomial spanning tree: `ceil(log2 p)` rounds, the whole message is
    /// forwarded in every round.  Cost `~ alpha*log p + beta*S*log p`.
    Binomial,
    /// Pipelined tree/chain: the message is split into fragments which are
    /// streamed, overlapping rounds.  Cost `~ alpha*log p + beta*S`.
    Pipelined,
}

/// BSP cost-model parameters.
///
/// All times are in (simulated) seconds.  "Word" is the accounting unit for
/// communication volume; key and record types report their size in words via
/// the algorithms that use the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// `T_I`: time for one unit of computation (one comparison / one key
    /// moved within memory).
    pub unit_compute: f64,
    /// `T_c` (beta): time to transfer one word across the network.
    pub unit_comm: f64,
    /// alpha: fixed overhead per point-to-point message.
    pub latency: f64,
    /// Disk beta: time to move one word (8 bytes, the same unit as
    /// `unit_comm` — β-volume is charged in bytes via `words_of_width`)
    /// between a rank's memory and its local disk, in either direction.
    /// The out-of-core tier charges run formation and merge passes here.
    pub unit_disk: f64,
    /// Disk alpha: fixed overhead per discrete disk transfer (one block
    /// read or one written-and-synced block), mirroring `latency` for the
    /// NIC channel.
    pub disk_latency: f64,
    /// Algorithm used for broadcasts and reductions.
    pub collective: CollectiveAlgo,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::bluegene_like()
    }
}

impl CostModel {
    /// A Blue Gene/Q-flavoured parameter set: ~1 ns per comparison,
    /// ~1 GB/s per-rank effective bandwidth for 8-byte words (8 ns/word),
    /// ~3 us message latency, pipelined collectives (as assumed by
    /// Table 5.1 for large messages); a ~500 MB/s per-rank disk
    /// (16 ns/word) with ~100 us per discrete transfer, the I/O-node class
    /// storage the out-of-core tier spills to.
    pub fn bluegene_like() -> Self {
        Self {
            unit_compute: 1.0e-9,
            unit_comm: 8.0e-9,
            latency: 3.0e-6,
            unit_disk: 1.6e-8,
            disk_latency: 1.0e-4,
            collective: CollectiveAlgo::Pipelined,
        }
    }

    /// A parameter set with relatively expensive communication, useful for
    /// ablations that exaggerate the cost of data movement.
    pub fn network_bound() -> Self {
        Self {
            unit_compute: 1.0e-9,
            unit_comm: 4.0e-8,
            latency: 1.0e-5,
            unit_disk: 1.6e-8,
            disk_latency: 1.0e-4,
            collective: CollectiveAlgo::Pipelined,
        }
    }

    /// A cost model that charges nothing; useful in unit tests that only
    /// care about data movement correctness.
    pub fn free() -> Self {
        Self {
            unit_compute: 0.0,
            unit_comm: 0.0,
            latency: 0.0,
            unit_disk: 0.0,
            disk_latency: 0.0,
            collective: CollectiveAlgo::Pipelined,
        }
    }

    /// Override the disk channel parameters (β per word, α per transfer).
    pub fn with_disk(mut self, unit_disk: f64, disk_latency: f64) -> Self {
        self.unit_disk = unit_disk;
        self.disk_latency = disk_latency;
        self
    }

    /// Use binomial collectives instead of pipelined ones.
    pub fn with_collective(mut self, algo: CollectiveAlgo) -> Self {
        self.collective = algo;
        self
    }

    /// Simulated time for `ops` units of local computation.
    pub fn compute(&self, ops: u64) -> f64 {
        self.unit_compute * ops as f64
    }

    /// Simulated time for a single point-to-point message of `words` words.
    pub fn point_to_point(&self, words: u64) -> f64 {
        self.latency + self.unit_comm * words as f64
    }

    /// Simulated time for moving `words` words between memory and the local
    /// disk in `transfers` discrete operations (the disk channel's α-β
    /// formula: `transfers·disk_latency + words·unit_disk`).  Reads and
    /// writes are charged identically; a merge pass that reads and rewrites
    /// every word therefore pays twice its data volume.
    pub fn disk_transfer(&self, words: u64, transfers: u64) -> f64 {
        self.disk_latency * transfers as f64 + self.unit_disk * words as f64
    }

    /// `ceil(log2 p)`, the number of rounds of a binomial tree over `p`
    /// participants; 0 when `p <= 1`.
    pub fn log2_ceil(p: usize) -> u32 {
        if p <= 1 {
            0
        } else {
            usize::BITS - (p - 1).leading_zeros()
        }
    }

    /// Communication time for broadcasting a message of `words` words from
    /// one root to `p` ranks.
    pub fn broadcast(&self, words: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = Self::log2_ceil(p) as f64;
        match self.collective {
            CollectiveAlgo::Binomial => rounds * (self.latency + self.unit_comm * words as f64),
            CollectiveAlgo::Pipelined => rounds * self.latency + self.unit_comm * words as f64,
        }
    }

    /// Communication time for reducing per-rank contributions of `words`
    /// words each down to one root (e.g. summing local histograms).  Same
    /// shape as a broadcast; the local combine work is charged separately as
    /// compute by the caller.
    pub fn reduce(&self, words: u64, p: usize) -> f64 {
        self.broadcast(words, p)
    }

    /// Communication time for gathering `total_words` words (summed over all
    /// ranks) at one root.  The root has to receive every word, so the cost
    /// is dominated by `O(total_words)` regardless of tree shape; we charge
    /// one latency per tree round.
    pub fn gather(&self, total_words: u64, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = Self::log2_ceil(p) as f64;
        rounds * self.latency + self.unit_comm * total_words as f64
    }

    /// Communication time of an irregular all-to-all (`MPI_Alltoallv`-like)
    /// exchange, in the BSP spirit: the bottleneck rank pays for the larger
    /// of what it sends and what it receives, plus one latency per peer it
    /// actually exchanges a message with.
    pub fn all_to_allv(&self, max_send_or_recv_words: u64, max_peer_messages: u64) -> f64 {
        self.latency * max_peer_messages as f64 + self.unit_comm * max_send_or_recv_words as f64
    }

    /// Compute time of a comparison sort of `n` keys: `n log2 n` comparisons.
    pub fn sort_ops(n: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        let logn = (n as f64).log2().ceil() as u64;
        n * logn.max(1)
    }

    /// Compute time of an MSD radix sort of `n` keys over `passes` digit
    /// (byte) levels: each pass reads every key once to classify it and
    /// moves it once in the block permutation, so `2·n·passes` ops.  This
    /// is deliberately the *worst-case* pass count of the key type (8 for
    /// 64-bit keys) — the implementation's prefix skipping and base-case
    /// cutoffs only ever do less — so simulated radix costs are an upper
    /// bound, just as `n log2 n` is for comparison sorts.  At `N/p ≥ 2^16`
    /// the model correctly ranks radix (`16n` for u64) below comparison
    /// (`n log2 n ≥ 16n`), mirroring the measured wall-clock crossover.
    pub fn radix_sort_ops(n: u64, passes: u64) -> u64 {
        if n <= 1 {
            return 0;
        }
        2 * n * passes.max(1)
    }

    /// Compute time of merging `n` total keys arriving in `pieces` sorted
    /// runs: `n log2 pieces` comparisons.
    pub fn merge_ops(n: u64, pieces: u64) -> u64 {
        if n == 0 || pieces <= 1 {
            return n;
        }
        let logp = (pieces as f64).log2().ceil() as u64;
        n * logp.max(1)
    }

    /// Compute time of `queries` binary searches over `n` sorted keys.
    pub fn binary_search_ops(queries: u64, n: u64) -> u64 {
        if n <= 1 {
            return queries;
        }
        let logn = (n as f64).log2().ceil() as u64;
        queries * logn.max(1)
    }

    /// Compute time of branch-free decision-tree classification of `n` keys
    /// against an implicit splitter tree of height `log_buckets`: one descend
    /// step per level per key (`n·log_buckets`), with a floor of one op per
    /// key so classifying into a single bucket is never free.  The per-step
    /// constant is deliberately *smaller* than a binary-search step's — the
    /// descend is branchless and runs with several keys in flight, which is
    /// exactly why the tree strategy exists (see
    /// `hss_partition::classify`).
    pub fn classify_ops(n: u64, log_buckets: u64) -> u64 {
        n * log_buckets.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(CostModel::log2_ceil(1), 0);
        assert_eq!(CostModel::log2_ceil(2), 1);
        assert_eq!(CostModel::log2_ceil(3), 2);
        assert_eq!(CostModel::log2_ceil(4), 2);
        assert_eq!(CostModel::log2_ceil(5), 3);
        assert_eq!(CostModel::log2_ceil(1024), 10);
        assert_eq!(CostModel::log2_ceil(1025), 11);
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.compute(1_000_000), 0.0);
        assert_eq!(m.broadcast(1 << 20, 4096), 0.0);
        assert_eq!(m.all_to_allv(1 << 30, 4096), 0.0);
        assert_eq!(m.disk_transfer(1 << 30, 4096), 0.0);
    }

    #[test]
    fn disk_transfer_charges_alpha_beta() {
        let m = CostModel::bluegene_like();
        let t = m.disk_transfer(1000, 4);
        let expected = 4.0 * m.disk_latency + 1000.0 * m.unit_disk;
        assert_eq!(t.to_bits(), expected.to_bits());
        // The disk is slower than the NIC per word in the default model —
        // the regime where spilling to disk is a last resort, as on the
        // paper's target machines.
        assert!(m.unit_disk > m.unit_comm);
        let custom = m.with_disk(1.0e-9, 0.0);
        assert_eq!(custom.disk_transfer(8, 3).to_bits(), 8.0e-9f64.to_bits());
    }

    #[test]
    fn pipelined_broadcast_beats_binomial_for_large_messages() {
        let p = 4096;
        let words = 1 << 22;
        let pipe = CostModel::bluegene_like().with_collective(CollectiveAlgo::Pipelined);
        let bino = CostModel::bluegene_like().with_collective(CollectiveAlgo::Binomial);
        assert!(pipe.broadcast(words, p) < bino.broadcast(words, p));
    }

    #[test]
    fn binomial_and_pipelined_agree_for_two_ranks() {
        // With p = 2 there is a single round, so both formulas coincide.
        let words = 1234;
        let pipe = CostModel::bluegene_like().with_collective(CollectiveAlgo::Pipelined);
        let bino = CostModel::bluegene_like().with_collective(CollectiveAlgo::Binomial);
        assert!((pipe.broadcast(words, 2) - bino.broadcast(words, 2)).abs() < 1e-12);
    }

    #[test]
    fn broadcast_to_single_rank_is_free() {
        let m = CostModel::bluegene_like();
        assert_eq!(m.broadcast(100, 1), 0.0);
        assert_eq!(m.reduce(100, 1), 0.0);
        assert_eq!(m.gather(100, 1), 0.0);
    }

    #[test]
    fn compute_scales_linearly() {
        let m = CostModel::bluegene_like();
        assert!((m.compute(2_000) - 2.0 * m.compute(1_000)).abs() < 1e-15);
    }

    #[test]
    fn sort_and_merge_op_counts() {
        assert_eq!(CostModel::sort_ops(0), 0);
        assert_eq!(CostModel::sort_ops(1), 0);
        assert_eq!(CostModel::sort_ops(2), 2);
        // 1024 keys -> 10 * 1024 comparisons.
        assert_eq!(CostModel::sort_ops(1024), 10 * 1024);
        assert_eq!(CostModel::merge_ops(1000, 1), 1000);
        assert_eq!(CostModel::merge_ops(1024, 8), 3 * 1024);
        assert_eq!(CostModel::binary_search_ops(10, 1024), 100);
    }

    #[test]
    fn radix_sort_ops_cross_comparison_at_64k() {
        assert_eq!(CostModel::radix_sort_ops(0, 8), 0);
        assert_eq!(CostModel::radix_sort_ops(1, 8), 0);
        assert_eq!(CostModel::radix_sort_ops(1000, 8), 16_000);
        // At n = 2^16 the models tie (16n each); above, radix is cheaper.
        let n = 1u64 << 16;
        assert_eq!(CostModel::radix_sort_ops(n, 8), CostModel::sort_ops(n));
        let n = 1u64 << 20;
        assert!(CostModel::radix_sort_ops(n, 8) < CostModel::sort_ops(n));
        // Below the crossover the comparison model is cheaper — also true
        // on real hardware, which is why the insertion base case exists.
        assert!(CostModel::radix_sort_ops(1 << 8, 8) > CostModel::sort_ops(1 << 8));
    }

    #[test]
    fn classify_ops_scale_with_tree_height() {
        assert_eq!(CostModel::classify_ops(0, 5), 0);
        assert_eq!(CostModel::classify_ops(1000, 5), 5_000);
        // A single-bucket tree still touches every key once.
        assert_eq!(CostModel::classify_ops(1000, 0), 1000);
        // A tree descend step is cheaper than a binary-search step at equal
        // height (the branchless-pipelining premise of the classify term).
        assert!(CostModel::classify_ops(1000, 10) <= CostModel::binary_search_ops(1000, 1024));
    }

    #[test]
    fn all_to_allv_charges_latency_per_peer() {
        let m = CostModel::bluegene_like();
        let few_peers = m.all_to_allv(1000, 10);
        let many_peers = m.all_to_allv(1000, 1000);
        assert!(many_peers > few_peers);
        let diff = many_peers - few_peers;
        assert!((diff - 990.0 * m.latency).abs() < 1e-9);
    }
}
