//! Flat exchange plans: the counts/displacements representation of an
//! irregular all-to-all, modelled on `MPI_Alltoallv`.
//!
//! The nested `Vec<Vec<Vec<T>>>` send matrix costs `p²` heap allocations
//! and a full copy of the input per exchange.  An [`ExchangePlan`] instead
//! describes how one *contiguous* per-rank buffer is split across
//! destinations: `counts[d]` elements starting at `displs[d]` go to rank
//! `d`.  The sender's buffer is typically its locally sorted data itself,
//! so building a plan allocates two `usize` vectors and copies nothing.
//!
//! [`Machine::all_to_allv_flat`](crate::machine::Machine::all_to_allv_flat)
//! consumes one buffer + plan per rank and returns one [`FlatRecv`] per
//! rank: a single contiguous receive buffer plus the plan describing where
//! each source's run lives inside it.

use serde::{Deserialize, Serialize};

/// Counts and displacements describing how a contiguous buffer is split
/// across `counts.len()` peers (`MPI_Alltoallv` style).
///
/// Invariant: `displs[i] = counts[0] + … + counts[i-1]`, i.e. the runs are
/// contiguous and in peer order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExchangePlan {
    /// Elements destined for (or received from) each peer.
    pub counts: Vec<usize>,
    /// Offset of each peer's run inside the flat buffer.
    pub displs: Vec<usize>,
    /// Declared width in **bytes** of one exchanged record, consumed by the
    /// α-β cost accounting so β-volume scales with item size (a 100-byte
    /// terasort record charges 12.5× the volume of a `u64` key).  `0` (the
    /// constructor default) means "derive from the element type at charge
    /// time" (`size_of::<U>()`); set an explicit width with
    /// [`Self::with_record_width`] to model a wire format that differs from
    /// the in-memory layout.
    pub record_width: usize,
}

impl ExchangePlan {
    /// Build a plan from per-peer counts; displacements are the exclusive
    /// prefix sums.
    pub fn from_counts(counts: Vec<usize>) -> Self {
        let mut displs = Vec::with_capacity(counts.len());
        let mut acc = 0usize;
        for &c in &counts {
            displs.push(acc);
            acc += c;
        }
        Self { counts, displs, record_width: 0 }
    }

    /// Build a plan from `peers + 1` monotone boundaries (`bounds[i]` is
    /// where peer `i`'s run starts, `bounds[peers]` the total length) — the
    /// shape produced by bucketizing sorted data by splitters.
    pub fn from_boundaries(bounds: &[usize]) -> Self {
        assert!(!bounds.is_empty(), "boundaries need at least one entry");
        debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "boundaries must be monotone");
        let counts = bounds.windows(2).map(|w| w[1] - w[0]).collect();
        let displs = bounds[..bounds.len() - 1].to_vec();
        Self { counts, displs, record_width: 0 }
    }

    /// Declare the wire width (bytes) of one exchanged record; see
    /// [`Self::record_width`].
    pub fn with_record_width(mut self, bytes: usize) -> Self {
        self.record_width = bytes;
        self
    }

    /// Number of peers the plan addresses.
    pub fn peers(&self) -> usize {
        self.counts.len()
    }

    /// Whether the plan addresses no peers at all.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total number of elements covered by the plan.
    pub fn total_elems(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The index range of peer `i`'s run inside the flat buffer.
    pub fn run_range(&self, i: usize) -> std::ops::Range<usize> {
        self.displs[i]..self.displs[i] + self.counts[i]
    }

    /// Peer `i`'s run as a sub-slice of `data`.
    pub fn run<'a, T>(&self, data: &'a [T], i: usize) -> &'a [T] {
        &data[self.run_range(i)]
    }

    /// Iterate over all runs of `data`, in peer order (including empty
    /// ones).
    pub fn runs<'a, 'b: 'a, T>(&'b self, data: &'a [T]) -> impl Iterator<Item = &'a [T]> + 'a {
        (0..self.peers()).map(move |i| self.run(data, i))
    }

    /// Number of peers with a non-empty run.
    pub fn nonempty_runs(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

/// One stage of a *staged* all-to-allv: the subset of destination ranks
/// whose buckets are ready, plus one plan per source rank locating those
/// buckets inside the source's full send buffer.
///
/// Unlike a full [`ExchangePlan`], a stage plan's counts are zero for every
/// destination outside [`ExchangeStage::destinations`] and its
/// displacements point at the bucket runs inside the (larger) sorted send
/// buffer, so they are *not* prefix sums of the counts and the counts do
/// not cover the whole buffer.  The union of all stages of one exchange
/// tiles each send buffer exactly once.
///
/// Stages exist so splitter determination can overlap the data exchange
/// (§4): as soon as a bucket's two bounding splitters are finalized, the
/// bucket is injected as part of a stage while later histogram rounds are
/// still running ([`Machine::exchange_stage`](crate::machine::Machine::exchange_stage)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeStage {
    /// Histogramming round after which this stage was injected (1-based;
    /// 0 for a stage not tied to a round).
    pub round: usize,
    /// Destination ranks whose buckets travel in this stage.
    pub destinations: Vec<usize>,
    /// Per-source counts/displacements into each source's send buffer.
    pub plans: Vec<ExchangePlan>,
}

impl ExchangeStage {
    /// Total number of elements moved by this stage (all sources).
    pub fn total_elems(&self) -> usize {
        self.plans.iter().map(|p| p.total_elems()).sum()
    }

    /// Whether the stage moves nothing at all.
    pub fn is_empty(&self) -> bool {
        self.destinations.is_empty() || self.total_elems() == 0
    }
}

/// One rank's result of a flat all-to-all: a contiguous receive buffer plus
/// the plan locating each source rank's run inside it (`plan.counts[s]`
/// elements from source `s` at `plan.displs[s]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRecv<U> {
    /// All received elements, grouped by source rank in rank order.
    pub data: Vec<U>,
    /// Where each source's run lives inside `data`.
    pub plan: ExchangePlan,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_prefix_sums() {
        let p = ExchangePlan::from_counts(vec![2, 0, 3, 1]);
        assert_eq!(p.displs, vec![0, 2, 2, 5]);
        assert_eq!(p.total_elems(), 6);
        assert_eq!(p.nonempty_runs(), 3);
        assert_eq!(p.run_range(2), 2..5);
    }

    #[test]
    fn from_boundaries_matches_from_counts() {
        let a = ExchangePlan::from_boundaries(&[0, 2, 2, 5, 6]);
        let b = ExchangePlan::from_counts(vec![2, 0, 3, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn runs_slice_the_buffer() {
        let plan = ExchangePlan::from_counts(vec![1, 2, 0]);
        let data = [10u64, 20, 21];
        let runs: Vec<&[u64]> = plan.runs(&data).collect();
        assert_eq!(runs, vec![&[10u64][..], &[20, 21][..], &[][..]]);
    }

    #[test]
    fn exchange_stage_totals_and_emptiness() {
        // Two sources, stage covering destination 1 only: source plans have
        // zero counts elsewhere and displacements at the bucket positions.
        let stage = ExchangeStage {
            round: 2,
            destinations: vec![1],
            plans: vec![
                ExchangePlan { counts: vec![0, 3, 0], displs: vec![0, 4, 0], record_width: 0 },
                ExchangePlan { counts: vec![0, 2, 0], displs: vec![0, 1, 0], record_width: 0 },
            ],
        };
        assert_eq!(stage.total_elems(), 5);
        assert!(!stage.is_empty());
        let empty = ExchangeStage { round: 0, destinations: vec![], plans: vec![] };
        assert!(empty.is_empty());
    }

    #[test]
    fn record_width_defaults_to_type_derived() {
        assert_eq!(ExchangePlan::from_counts(vec![1, 2]).record_width, 0);
        assert_eq!(ExchangePlan::from_boundaries(&[0, 3]).record_width, 0);
        let p = ExchangePlan::from_counts(vec![1, 2]).with_record_width(100);
        assert_eq!(p.record_width, 100);
        assert_eq!(p.counts, vec![1, 2]);
    }

    #[test]
    fn empty_plan() {
        let p = ExchangePlan::from_counts(Vec::new());
        assert!(p.is_empty());
        assert_eq!(p.total_elems(), 0);
        assert_eq!(p.nonempty_runs(), 0);
    }
}
