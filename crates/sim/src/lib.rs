//! `hss-sim` — a bulk-synchronous-parallel (BSP) cluster simulator.
//!
//! This crate is the substrate the HSS reproduction runs on, replacing the
//! Charm++ runtime and the Mira supercomputer used by the paper.  A
//! [`Machine`] owns a [`Topology`] (ranks grouped into shared-memory nodes),
//! a [`CostModel`] (Valiant's BSP parameters plus binomial/pipelined
//! collective formulas from §5.1 of the paper), a [`MetricsRegistry`]
//! (per-phase simulated time, wall time, message and word counts) and an
//! optional superstep [`Trace`].
//!
//! Algorithms keep their data as `Vec<Vec<T>>` — one vector per simulated
//! rank — and drive it through:
//!
//! * local phases ([`Machine::local_phase`], [`Machine::map_phase`],
//!   [`Machine::transform_phase`]) which execute for real, in parallel
//!   across ranks via rayon, and are charged `max` over ranks of the
//!   reported [`Work`];
//! * collectives ([`Machine::gather_to_root`], [`Machine::broadcast`],
//!   [`Machine::reduce_sum`], [`Machine::all_to_allv`],
//!   [`Machine::all_to_allv_node_combined`]) which move the data and charge
//!   the corresponding collective cost.
//!
//! Because all data movement is real, correctness properties (global sorted
//! order, load balance) are checked on actual results; because time is
//! charged by the cost model, experiments can reproduce the *shape* of the
//! paper's figures at processor counts far beyond the host's core count.
//!
//! # Example
//!
//! ```
//! use hss_sim::{Machine, Phase, Topology, CostModel, Work};
//!
//! // 8 ranks in 2 shared-memory nodes.
//! let mut machine = Machine::new(Topology::new(8, 4), CostModel::bluegene_like());
//! let mut data: Vec<Vec<u64>> = (0..8).map(|r| vec![r as u64 * 3, r as u64 * 3 + 1]).collect();
//!
//! // A local phase: every rank sorts its keys.
//! machine.local_phase(Phase::LocalSort, &mut data, |_rank, local| {
//!     local.sort_unstable();
//!     Work::sort(local.len())
//! });
//!
//! // A collective: gather one sample key per rank at the root.
//! let samples: Vec<Vec<u64>> = data.iter().map(|v| vec![v[0]]).collect();
//! let gathered = machine.gather_to_root(Phase::Sampling, samples);
//! assert_eq!(gathered.len(), 8);
//! assert!(machine.metrics().total_simulated_seconds() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod comm;
pub mod cost;
pub mod machine;
pub mod metrics;
pub mod plan;
pub mod timeline;
pub mod topology;
pub mod trace;

pub use cost::{CollectiveAlgo, CostModel};
pub use machine::{words_of, Machine, Parallelism, Work};
pub use metrics::{MetricsRegistry, Phase, PhaseMetrics};
pub use plan::{ExchangePlan, ExchangeStage, FlatRecv};
pub use timeline::{Span, SyncModel, Timeline};
pub use topology::{NodeId, RankId, Topology};
pub use trace::{CriticalHop, Trace, TraceEvent};
