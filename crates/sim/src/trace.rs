//! Optional superstep-level trace of a simulated execution.
//!
//! When enabled on a [`Machine`](crate::machine::Machine), every superstep
//! (local phase or collective) appends one [`TraceEvent`].  The trace is the
//! raw material for Figure 3.1-style visualisations (how splitter intervals
//! shrink round over round is recorded by the algorithm itself; the trace
//! records the time/volume of each round) and for debugging cost anomalies.

use crate::metrics::Phase;

/// One superstep's worth of trace information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Index of the superstep (0-based, in execution order).
    pub superstep: u64,
    /// Phase the superstep was attributed to.
    pub phase: Phase,
    /// Static label identifying the operation ("gather", "all_to_allv", ...).
    pub label: &'static str,
    /// Simulated seconds charged for this superstep.
    pub simulated_seconds: f64,
    /// Words moved across the network in this superstep.
    pub comm_words: u64,
    /// Messages injected in this superstep.
    pub messages: u64,
}

/// A (possibly disabled) sequence of [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Self { enabled: true, events: Vec::new() }
    }

    /// A trace that silently drops events (the default; avoids unbounded
    /// memory growth in long benchmark runs).
    pub fn disabled() -> Self {
        Self { enabled: false, events: Vec::new() }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (no-op when disabled).
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events belonging to one phase.
    pub fn phase_events(&self, phase: Phase) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.phase == phase)
    }

    /// Total simulated time across recorded events.
    pub fn total_simulated_seconds(&self) -> f64 {
        self.events.iter().map(|e| e.simulated_seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(step: u64, phase: Phase, t: f64) -> TraceEvent {
        TraceEvent {
            superstep: step,
            phase,
            label: "test",
            simulated_seconds: t,
            comm_words: 0,
            messages: 0,
        }
    }

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        t.push(event(0, Phase::Other, 1.0));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.push(event(0, Phase::Sampling, 1.0));
        t.push(event(1, Phase::Histogramming, 2.0));
        t.push(event(2, Phase::Sampling, 3.0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[1].phase, Phase::Histogramming);
        assert_eq!(t.phase_events(Phase::Sampling).count(), 2);
        assert_eq!(t.total_simulated_seconds(), 6.0);
    }
}
