//! Optional superstep-level trace of a simulated execution.
//!
//! When enabled on a [`crate::machine::Machine`], every superstep
//! (local phase, collective, or asynchronous exchange stage) appends one
//! [`TraceEvent`] carrying, besides the charged cost and volumes, the
//! per-rank `(start, end)` spans the event occupied on the
//! [`crate::timeline::Timeline`].  The trace is therefore a full
//! per-rank Gantt chart of the run: the demo binary dumps it as JSON
//! (`--trace`), and [`Trace::critical_path`] extracts the chain of events
//! that determines the makespan.

use serde::Serialize;

use crate::metrics::Phase;
use crate::timeline::Span;
use crate::topology::RankId;

/// One superstep's worth of trace information.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Index of the superstep (0-based, in execution order).
    pub superstep: u64,
    /// Phase the superstep was attributed to.
    pub phase: Phase,
    /// Static label identifying the operation ("gather", "all_to_allv", ...).
    pub label: &'static str,
    /// Simulated seconds charged for this superstep.
    pub simulated_seconds: f64,
    /// Words moved across the network in this superstep.
    pub comm_words: u64,
    /// Messages injected in this superstep.
    pub messages: u64,
    /// Per-rank `(start, end)` spans on the timeline.  For a synchronizing
    /// collective every participant shares one span; for a local phase each
    /// rank has its own; for an asynchronous stage the spans belong to the
    /// senders' NICs rather than their compute clocks.
    pub spans: Vec<Span>,
    /// For synchronizing events: the rank whose clock determined the start
    /// (the rank everyone else waited for).  `None` for per-rank events.
    pub bottleneck: Option<RankId>,
}

impl TraceEvent {
    /// The span this event occupies on rank `r`, if `r` participated.
    pub fn span_for(&self, r: RankId) -> Option<Span> {
        self.spans.iter().copied().find(|s| s.rank == r)
    }

    /// Earliest start over all participating ranks.
    pub fn start(&self) -> f64 {
        self.spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min)
    }

    /// Latest end over all participating ranks.
    pub fn end(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }
}

/// One hop of the critical path: an event, viewed from the rank whose clock
/// the path runs through.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CriticalHop {
    /// Superstep index of the event.
    pub superstep: u64,
    /// Phase of the event.
    pub phase: Phase,
    /// Operation label of the event.
    pub label: &'static str,
    /// The rank the path runs through during this event.
    pub rank: RankId,
    /// When the rank entered the event.
    pub start: f64,
    /// When the rank left the event.
    pub end: f64,
}

/// A (possibly disabled) sequence of [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A trace that records events.
    pub fn enabled() -> Self {
        Self { enabled: true, events: Vec::new() }
    }

    /// A trace that silently drops events (the default; avoids unbounded
    /// memory growth in long benchmark runs).
    pub fn disabled() -> Self {
        Self { enabled: false, events: Vec::new() }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (no-op when disabled).
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events, in execution order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events belonging to one phase.
    pub fn phase_events(&self, phase: Phase) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.phase == phase)
    }

    /// Total simulated time across recorded events.
    pub fn total_simulated_seconds(&self) -> f64 {
        self.events.iter().map(|e| e.simulated_seconds).sum()
    }

    /// The chain of events that determines the makespan, in execution
    /// order.
    ///
    /// Walks backwards from the globally latest span: at each hop the path
    /// follows the current rank's latest span ending at (or before) the
    /// current time; when the event is a synchronizing collective, the path
    /// jumps to the event's bottleneck rank — the rank everyone else waited
    /// for — because that rank's earlier work is what delayed the
    /// collective.  Empty if no events were recorded.
    pub fn critical_path(&self) -> Vec<CriticalHop> {
        // Allow for the last-few-bits noise of f64 accumulation when
        // matching span boundaries.
        const EPS: f64 = 1e-12;
        let mut path = Vec::new();
        // Globally latest span.
        let mut cursor: Option<(usize, RankId)> = None;
        let mut latest = f64::NEG_INFINITY;
        for (i, e) in self.events.iter().enumerate() {
            for s in &e.spans {
                if s.end > latest {
                    latest = s.end;
                    cursor = Some((i, s.rank));
                }
            }
        }
        let Some((idx, mut rank)) = cursor else {
            return path;
        };
        let mut next_idx = Some(idx);
        let mut visited = vec![false; self.events.len()];
        while let Some(idx) = next_idx {
            visited[idx] = true;
            let e = &self.events[idx];
            let span = e.span_for(rank).expect("cursor rank must participate");
            path.push(CriticalHop {
                superstep: e.superstep,
                phase: e.phase,
                label: e.label,
                rank,
                start: span.start,
                end: span.end,
            });
            if let Some(b) = e.bottleneck {
                rank = b;
            }
            let time = span.start;
            if time <= 0.0 {
                break;
            }
            // Predecessor: the event whose span on `rank` ends latest
            // without exceeding the current start time.
            next_idx = None;
            let mut best_end = f64::NEG_INFINITY;
            for (i, cand) in self.events.iter().enumerate() {
                if visited[i] {
                    continue;
                }
                if let Some(s) = cand.span_for(rank) {
                    if s.end <= time + EPS && s.end > best_end {
                        best_end = s.end;
                        next_idx = Some(i);
                    }
                }
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(step: u64, phase: Phase, t: f64) -> TraceEvent {
        TraceEvent {
            superstep: step,
            phase,
            label: "test",
            simulated_seconds: t,
            comm_words: 0,
            messages: 0,
            spans: Vec::new(),
            bottleneck: None,
        }
    }

    fn spanned(
        step: u64,
        phase: Phase,
        label: &'static str,
        spans: Vec<Span>,
        bottleneck: Option<RankId>,
    ) -> TraceEvent {
        let dur = spans.iter().map(|s| s.end - s.start).fold(0.0, f64::max);
        TraceEvent {
            superstep: step,
            phase,
            label,
            simulated_seconds: dur,
            comm_words: 0,
            messages: 0,
            spans,
            bottleneck,
        }
    }

    fn span(rank: RankId, start: f64, end: f64) -> Span {
        Span { rank, start, end }
    }

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::disabled();
        t.push(event(0, Phase::Other, 1.0));
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.push(event(0, Phase::Sampling, 1.0));
        t.push(event(1, Phase::Histogramming, 2.0));
        t.push(event(2, Phase::Sampling, 3.0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[1].phase, Phase::Histogramming);
        assert_eq!(t.phase_events(Phase::Sampling).count(), 2);
        assert_eq!(t.total_simulated_seconds(), 6.0);
    }

    #[test]
    fn event_start_end_cover_spans() {
        let e = spanned(0, Phase::Other, "local", vec![span(0, 0.0, 1.0), span(1, 0.0, 3.0)], None);
        assert_eq!(e.start(), 0.0);
        assert_eq!(e.end(), 3.0);
        assert_eq!(e.span_for(1), Some(span(1, 0.0, 3.0)));
        assert_eq!(e.span_for(7), None);
    }

    #[test]
    fn critical_path_on_empty_trace_is_empty() {
        assert!(Trace::enabled().critical_path().is_empty());
        assert!(Trace::disabled().critical_path().is_empty());
    }

    #[test]
    fn critical_path_follows_bottleneck_through_a_collective() {
        // Hand-built two-rank run: rank 1's long local phase delays the
        // collective; after the collective rank 0 does the long tail work.
        //   step 0 (local): rank 0 [0, 1], rank 1 [0, 4]
        //   step 1 (sync collective, bottleneck rank 1): both [4, 5]
        //   step 2 (local): rank 0 [5, 8], rank 1 [5, 6]
        let mut t = Trace::enabled();
        t.push(spanned(
            0,
            Phase::LocalSort,
            "local_phase",
            vec![span(0, 0.0, 1.0), span(1, 0.0, 4.0)],
            None,
        ));
        t.push(spanned(
            1,
            Phase::Histogramming,
            "reduce_sum",
            vec![span(0, 4.0, 5.0), span(1, 4.0, 5.0)],
            Some(1),
        ));
        t.push(spanned(
            2,
            Phase::Merge,
            "local_phase",
            vec![span(0, 5.0, 8.0), span(1, 5.0, 6.0)],
            None,
        ));
        let path = t.critical_path();
        let hops: Vec<(u64, RankId)> = path.iter().map(|h| (h.superstep, h.rank)).collect();
        // Backwards: merge on rank 0 <- collective on rank 0, jumping to
        // bottleneck rank 1 <- rank 1's long local phase.
        assert_eq!(hops, vec![(0, 1), (1, 0), (2, 0)]);
        assert_eq!(path.last().unwrap().end, 8.0);
        assert_eq!(path[0].start, 0.0);
    }

    #[test]
    fn critical_path_picks_latest_ending_span_as_terminal() {
        // An async stage (NIC span) outlives the last compute event: the
        // path must terminate at the stage, not at the last pushed event.
        let mut t = Trace::enabled();
        t.push(spanned(0, Phase::DataExchange, "exchange_stage", vec![span(0, 1.0, 9.0)], None));
        t.push(spanned(
            1,
            Phase::Histogramming,
            "local_phase",
            vec![span(0, 1.0, 2.0), span(1, 1.0, 3.0)],
            None,
        ));
        let path = t.critical_path();
        assert_eq!(path.last().unwrap().label, "exchange_stage");
        assert_eq!(path.last().unwrap().end, 9.0);
    }
}
