//! `hss-analysis` — the paper's closed-form cost model.
//!
//! Everything in this crate is *analytic*: no data is generated and no
//! simulator is involved.  It evaluates the sample-size formulas behind
//! Figure 4.1 and the running-time expressions of Table 5.1 so the
//! benchmark harness can print the paper's analytic rows next to the
//! measured ones.
//!
//! ```
//! use hss_analysis::Algorithm;
//!
//! // The introduction's running example: p = 64,000 cores, eps = 5%.
//! let p = 64_000;
//! let n_total = p as u64 * 1_000_000;
//! let regular = Algorithm::SampleSortRegular.sample_size_bytes(p, n_total, 0.05, 8);
//! let hss2 = Algorithm::HssRounds(2).sample_size_bytes(p, n_total, 0.05, 8);
//! assert!(regular / hss2 > 1_000.0); // hundreds of GB vs tens of MB
//! ```

#![warn(missing_docs)]

pub mod complexity;
pub mod sample_size;

pub use complexity::{sampling_dominates, table_5_1_costs, CostBreakdown};
pub use sample_size::{figure_4_1_processor_counts, Algorithm};
