//! Closed-form overall sample sizes for every algorithm the paper compares
//! (the second and third columns of Table 5.1 and all series of Figure 4.1).
//!
//! All formulas give the *overall* sample collected at the central
//! processor (summed over all processors and, for HSS, over all rounds),
//! measured in keys; multiply by the key width to get bytes (the paper's
//! intro quotes 8-byte keys).

use serde::{Deserialize, Serialize};

/// An algorithm whose sample size the paper analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Sample sort with regular sampling: `p²/ε` keys (Lemma 4.1.1).
    SampleSortRegular,
    /// Sample sort with random sampling: `4(1+ε)·p·ln N/ε²` keys
    /// (Theorem 4.1.1 with the constant the paper derives).
    SampleSortRandom,
    /// HSS with one histogramming round: `2·p·ln p/ε` keys (Lemma 3.2.1).
    HssOneRound,
    /// HSS with `k` rounds: `k · p · (2 ln p/ε)^{1/k}` keys (Lemma 3.3.1).
    HssRounds(usize),
    /// HSS with `k = log(log p/ε)` rounds and constant oversampling:
    /// `c·p·log(log p/ε)` keys (Lemma 3.3.2); the constant-oversampling
    /// series of Figure 4.1 uses `c = 5` samples per processor per round
    /// like the implementation.
    HssConstantOversampling,
}

impl Algorithm {
    /// Stable name used in experiment output (matches the Figure 4.1
    /// legend).
    pub fn name(&self) -> String {
        match self {
            Algorithm::SampleSortRegular => "regular sampling".to_string(),
            Algorithm::SampleSortRandom => "random sampling".to_string(),
            Algorithm::HssOneRound => "HSS - 1 round".to_string(),
            Algorithm::HssRounds(k) => format!("HSS - {k} rounds"),
            Algorithm::HssConstantOversampling => "HSS - constant oversampling".to_string(),
        }
    }

    /// Overall sample size in keys for `p` processors, `n_total` keys and
    /// load-imbalance threshold `epsilon`.
    pub fn sample_size_keys(&self, p: usize, n_total: u64, epsilon: f64) -> f64 {
        assert!(p >= 2, "need at least two processors");
        assert!(epsilon > 0.0);
        let pf = p as f64;
        match self {
            Algorithm::SampleSortRegular => pf * pf / epsilon,
            Algorithm::SampleSortRandom => {
                let n = (n_total.max(2)) as f64;
                4.0 * (1.0 + epsilon) * pf * n.ln() / (epsilon * epsilon)
            }
            Algorithm::HssOneRound => 2.0 * pf * pf.ln() / epsilon,
            Algorithm::HssRounds(k) => {
                let k = (*k).max(1) as f64;
                k * pf * (2.0 * pf.ln() / epsilon).powf(1.0 / k)
            }
            Algorithm::HssConstantOversampling => {
                let rounds = ((pf.ln() / epsilon).ln()).ceil().max(1.0);
                5.0 * pf * rounds
            }
        }
    }

    /// Overall sample size in bytes assuming `key_bytes`-byte keys.
    pub fn sample_size_bytes(&self, p: usize, n_total: u64, epsilon: f64, key_bytes: u64) -> f64 {
        self.sample_size_keys(p, n_total, epsilon) * key_bytes as f64
    }

    /// The five series plotted in Figure 4.1, in legend order.
    pub fn figure_4_1_series() -> Vec<Algorithm> {
        vec![
            Algorithm::SampleSortRegular,
            Algorithm::SampleSortRandom,
            Algorithm::HssOneRound,
            Algorithm::HssRounds(2),
            Algorithm::HssConstantOversampling,
        ]
    }
}

/// The processor counts on the x-axis of Figure 4.1 (4 → 256 K, powers of
/// four).
pub fn figure_4_1_processor_counts() -> Vec<usize> {
    (1..=9).map(|i| 4usize.pow(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;

    /// The introduction's running example: p = 64·10³, ε = 0.05,
    /// N/p = 10⁶, 8-byte keys.
    fn intro_example(alg: Algorithm) -> f64 {
        let p = 64_000;
        let n_total = 64_000u64 * 1_000_000;
        alg.sample_size_bytes(p, n_total, 0.05, 8)
    }

    #[test]
    fn intro_example_regular_sampling_is_hundreds_of_gigabytes() {
        // Paper: "655 GB for sample sort with regular sampling".
        let bytes = intro_example(Algorithm::SampleSortRegular);
        assert!(bytes / GB > 400.0 && bytes / GB < 900.0, "{} GB", bytes / GB);
    }

    #[test]
    fn intro_example_random_sampling_is_a_few_gigabytes() {
        // Paper: "5 GB for Sample sort with random sampling".
        let bytes = intro_example(Algorithm::SampleSortRandom);
        assert!(bytes / GB > 1.0 && bytes / GB < 20.0, "{} GB", bytes / GB);
    }

    #[test]
    fn intro_example_hss_one_round_is_hundreds_of_megabytes() {
        // Paper: "250 MB ... for Histogram sort with sampling with one round".
        let bytes = intro_example(Algorithm::HssOneRound);
        assert!(bytes / MB > 100.0 && bytes / MB < 500.0, "{} MB", bytes / MB);
    }

    #[test]
    fn intro_example_hss_two_rounds_is_tens_of_megabytes() {
        // Paper: "22 MB ... with two rounds".
        let bytes = intro_example(Algorithm::HssRounds(2));
        assert!(bytes / MB > 5.0 && bytes / MB < 60.0, "{} MB", bytes / MB);
    }

    #[test]
    fn table_5_1_ordering_holds_for_p_1e5() {
        // Table 5.1's numeric column: regular ≫ random ≫ HSS-1 ≫ HSS-2 ≫
        // HSS-log-log for p = 10^5, eps = 5%.
        let p = 100_000;
        let n_total = 100_000u64 * 1_000_000;
        let eps = 0.05;
        let sizes: Vec<f64> = [
            Algorithm::SampleSortRegular,
            Algorithm::SampleSortRandom,
            Algorithm::HssOneRound,
            Algorithm::HssRounds(2),
            Algorithm::HssConstantOversampling,
        ]
        .iter()
        .map(|a| a.sample_size_keys(p, n_total, eps))
        .collect();
        for w in sizes.windows(2) {
            assert!(w[0] > w[1], "ordering violated: {sizes:?}");
        }
        // Regular sampling vs HSS-2: at least three orders of magnitude.
        assert!(sizes[0] / sizes[3] > 1e3);
    }

    #[test]
    fn more_rounds_means_fewer_samples_until_the_optimum() {
        let p = 1 << 18;
        let n_total = 1u64 << 40;
        let eps = 0.05;
        let k_opt = ((p as f64).ln() / eps).ln().ceil() as usize;
        let mut prev = f64::INFINITY;
        for k in 1..=k_opt {
            let s = Algorithm::HssRounds(k).sample_size_keys(p, n_total, eps);
            assert!(s < prev, "k = {k}: {s} >= {prev}");
            prev = s;
        }
    }

    #[test]
    fn figure_4_1_series_and_axis_have_expected_shape() {
        let series = Algorithm::figure_4_1_series();
        assert_eq!(series.len(), 5);
        let xs = figure_4_1_processor_counts();
        assert_eq!(xs.first().copied(), Some(4));
        assert_eq!(xs.last().copied(), Some(262_144));
        // Every series is monotone increasing in p.
        for alg in series {
            let mut prev = 0.0;
            for &p in &xs {
                let s = alg.sample_size_keys(p, (p as u64) * 1_000_000, 0.05);
                assert!(s > prev, "{} not increasing at p = {p}", alg.name());
                prev = s;
            }
        }
    }

    #[test]
    fn names_match_figure_legend() {
        assert_eq!(Algorithm::SampleSortRegular.name(), "regular sampling");
        assert_eq!(Algorithm::HssRounds(2).name(), "HSS - 2 rounds");
        assert_eq!(Algorithm::HssConstantOversampling.name(), "HSS - constant oversampling");
    }
}
