//! Running-time complexity expressions of Table 5.1.
//!
//! Table 5.1 decomposes each algorithm's cost into computation and
//! communication terms under the BSP model with pipelined collectives:
//!
//! * local sort: `N/p · log(N/p)` (computation only);
//! * splitter determination: `sample size · log N` computation plus
//!   `sample size` communication (gather + histogram reductions are both
//!   proportional to the sample);
//! * data movement: `N/p` communication plus `N/p · log p` merge
//!   computation;
//! * broadcast of splitters: `p` communication.
//!
//! The functions here evaluate those expressions in abstract "operations" /
//! "words" so benchmark output can print the same rows as the table and
//! compare their growth against the measured simulator costs.

use serde::{Deserialize, Serialize};

use crate::sample_size::Algorithm;

/// The evaluated cost expression of one Table 5.1 row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Local sort computation (`N/p log N/p`).
    pub local_sort_ops: f64,
    /// Splitter-determination computation (`sample · log N`).
    pub splitter_ops: f64,
    /// Merge computation after the exchange (`N/p · log p`).
    pub merge_ops: f64,
    /// Splitter-determination communication (`sample + p`).
    pub splitter_comm_words: f64,
    /// Data-movement communication (`N/p`).
    pub exchange_comm_words: f64,
}

impl CostBreakdown {
    /// Total computation operations.
    pub fn total_ops(&self) -> f64 {
        self.local_sort_ops + self.splitter_ops + self.merge_ops
    }

    /// Total communication words.
    pub fn total_comm_words(&self) -> f64 {
        self.splitter_comm_words + self.exchange_comm_words
    }
}

/// Evaluate the Table 5.1 cost expression for `algorithm` at `p` processors,
/// `n_total` keys and threshold `epsilon`.
pub fn table_5_1_costs(
    algorithm: Algorithm,
    p: usize,
    n_total: u64,
    epsilon: f64,
) -> CostBreakdown {
    assert!(p >= 2);
    let pf = p as f64;
    let n = n_total.max(2) as f64;
    let n_per_p = (n / pf).max(2.0);
    let sample = algorithm.sample_size_keys(p, n_total, epsilon);
    CostBreakdown {
        local_sort_ops: n_per_p * n_per_p.log2(),
        splitter_ops: sample * n.log2(),
        merge_ops: n_per_p * pf.log2(),
        splitter_comm_words: sample + pf,
        exchange_comm_words: n_per_p,
    }
}

/// Whether splitter determination dominates the data-movement terms for the
/// given configuration — the regime in which the sampling cost matters
/// (§5.1: "For large p, the sampling cost dominates the running time of
/// sample sort").
pub fn sampling_dominates(algorithm: Algorithm, p: usize, n_total: u64, epsilon: f64) -> bool {
    let c = table_5_1_costs(algorithm, p, n_total, epsilon);
    c.splitter_ops > c.local_sort_ops + c.merge_ops || c.splitter_comm_words > c.exchange_comm_words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_sampling_splitter_cost_dominates_and_dwarfs_hss() {
        // Table 5.1 regime: p = 10^5, eps = 5 %, 10^6 keys per processor.
        // Regular sampling's splitter determination dominates its own
        // running time and exceeds the HSS splitter cost by orders of
        // magnitude; HSS keeps it within a small factor of the local sort.
        let p = 100_000;
        let n_total = 100_000u64 * 1_000_000;
        let eps = 0.05;
        assert!(sampling_dominates(Algorithm::SampleSortRegular, p, n_total, eps));
        let regular = table_5_1_costs(Algorithm::SampleSortRegular, p, n_total, eps);
        let hss = table_5_1_costs(Algorithm::HssConstantOversampling, p, n_total, eps);
        assert!(regular.splitter_ops / hss.splitter_ops > 1e4);
        // HSS's splitter cost stays within an order of magnitude of the
        // (algorithm-independent) local sort; regular sampling's does not.
        assert!(hss.splitter_ops < 10.0 * hss.local_sort_ops);
        assert!(regular.splitter_ops > 1_000.0 * regular.local_sort_ops);
    }

    #[test]
    fn local_sort_and_exchange_terms_are_algorithm_independent() {
        let p = 4096;
        let n_total = 1u64 << 32;
        let a = table_5_1_costs(Algorithm::SampleSortRegular, p, n_total, 0.05);
        let b = table_5_1_costs(Algorithm::HssRounds(2), p, n_total, 0.05);
        assert_eq!(a.local_sort_ops, b.local_sort_ops);
        assert_eq!(a.exchange_comm_words, b.exchange_comm_words);
        assert_eq!(a.merge_ops, b.merge_ops);
        assert!(a.splitter_ops > b.splitter_ops);
    }

    #[test]
    fn totals_sum_their_parts() {
        let c = table_5_1_costs(Algorithm::HssOneRound, 1024, 1 << 30, 0.05);
        assert!((c.total_ops() - (c.local_sort_ops + c.splitter_ops + c.merge_ops)).abs() < 1e-6);
        assert!(
            (c.total_comm_words() - (c.splitter_comm_words + c.exchange_comm_words)).abs() < 1e-6
        );
    }

    #[test]
    fn hss_total_cost_beats_sample_sort_at_scale() {
        // The paper's conclusion: HSS is asymptotically (and at realistic
        // scales, concretely) cheaper than both sample sort variants.
        let p = 65_536;
        let n_total = (p as u64) * 1_000_000;
        let eps = 0.05;
        let hss = table_5_1_costs(Algorithm::HssRounds(2), p, n_total, eps);
        for other in [Algorithm::SampleSortRegular, Algorithm::SampleSortRandom] {
            let o = table_5_1_costs(other, p, n_total, eps);
            assert!(hss.total_ops() < o.total_ops(), "{other:?}");
            assert!(hss.total_comm_words() < o.total_comm_words(), "{other:?}");
        }
    }
}
