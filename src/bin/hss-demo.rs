//! `hss-demo` — a small command-line front end for the reproduction.
//!
//! Generates a synthetic workload, sorts it on the simulated cluster with a
//! chosen algorithm and prints the execution report.  No external argument
//! parser is used; the flag grammar is deliberately tiny.
//!
//! ```text
//! cargo run --release --bin hss-demo -- --ranks 64 --keys 100000 --dist powerlaw \
//!     --algorithm hss --epsilon 0.05 --cores-per-node 16 --node-level
//! cargo run --release --bin hss-demo -- --help
//! ```

use std::process::exit;

use hss_repro::baselines::{
    bitonic_sort_with, HistogramSortConfig, OverPartitioningConfig, RadixConfig, SampleSortConfig,
};
use hss_repro::core::SortReport;
use hss_repro::partition::verify_global_sort;
use hss_repro::prelude::*;

const HELP: &str = "\
hss-demo — sort a synthetic workload on the simulated cluster

USAGE:
    hss-demo [OPTIONS]

OPTIONS:
    --ranks <N>            number of simulated processor cores   [default: 64]
    --cores-per-node <N>   cores per shared-memory node          [default: 16]
    --keys <N>             keys per core                         [default: 50000]
    --dist <NAME>          uniform | normal | exponential | powerlaw | staggered |
                           sorted | reverse | allequal | fewdistinct | lambb | dwarf
                                                                  [default: uniform]
    --algorithm <NAME>     hss | hss-one-round | hss-scanning | sample-regular |
                           sample-random | histogram | overpartition | bitonic | radix
                                                                  [default: hss]
    --epsilon <F>          load-imbalance threshold               [default: 0.05]
    --local-sort <NAME>    comparison | radix — local-sort algorithm for the
                           per-rank sorts (default: LOCAL_SORT env, else radix)
    --threads <N>          host OS threads for the rayon pool (0 = auto;
                           default: RAYON_NUM_THREADS, else all cores)
    --sequential           run local phases sequentially (determinism oracle)
    --overlapped           overlapped execution: splitter determination
                           pipelined with a staged exchange (hss only)
    --trace <PATH>         dump the per-rank timeline (trace events +
                           critical path) as JSON to PATH
    --node-level           enable node-level partitioning (hss only)
    --tag-duplicates       enable duplicate tagging (hss only)
    --approx-histograms    answer histograms from representative samples (hss only)
    --extsort              out-of-core tier: ranks over the memory cap spill
                           through the external sorter (hss only)
    --memory-cap <BYTES>   per-rank record-buffer budget for --extsort
                                                          [default: 1048576]
    --run-dir <PATH>       scratch root for run files (cleaned up on exit)
                                                          [default: temp dir]
    --io-mode <NAME>       sync | overlapped — external-sort I/O scheduling
                                                          [default: overlapped]
    --pipelined            single-pass out-of-core: splitters from run files,
                           merge drained straight into staged exchange sends
                           (requires --extsort)
    --prefetch-depth <N>   pin the overlapped merge's per-run prefetch depth
                           (>= 2; default: auto-tuned from the disk cost model)
    --seed <N>             RNG seed                               [default: 2019]
    --verify               verify the output is a correct global sort
    --help                 print this help
";

#[derive(Debug, Clone)]
struct Args {
    ranks: usize,
    cores_per_node: usize,
    keys: usize,
    dist: String,
    algorithm: String,
    epsilon: f64,
    local_sort: LocalSortAlgo,
    threads: Option<usize>,
    sequential: bool,
    overlapped: bool,
    trace: Option<String>,
    node_level: bool,
    tag_duplicates: bool,
    approx_histograms: bool,
    extsort: bool,
    memory_cap: usize,
    run_dir: Option<String>,
    io_mode: IoMode,
    pipelined: bool,
    prefetch_depth: Option<usize>,
    seed: u64,
    verify: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            ranks: 64,
            cores_per_node: 16,
            keys: 50_000,
            dist: "uniform".to_string(),
            algorithm: "hss".to_string(),
            epsilon: 0.05,
            local_sort: LocalSortAlgo::default(),
            threads: None,
            sequential: false,
            overlapped: false,
            trace: None,
            node_level: false,
            tag_duplicates: false,
            approx_histograms: false,
            extsort: false,
            memory_cap: 1 << 20,
            run_dir: None,
            io_mode: IoMode::Overlapped,
            pipelined: false,
            prefetch_depth: None,
            seed: 2019,
            verify: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                exit(2);
            })
        };
        match flag.as_str() {
            "--ranks" => args.ranks = value("--ranks").parse().expect("--ranks must be an integer"),
            "--cores-per-node" => {
                args.cores_per_node =
                    value("--cores-per-node").parse().expect("--cores-per-node must be an integer")
            }
            "--keys" => args.keys = value("--keys").parse().expect("--keys must be an integer"),
            "--dist" => args.dist = value("--dist"),
            "--algorithm" => args.algorithm = value("--algorithm"),
            "--epsilon" => {
                args.epsilon = value("--epsilon").parse().expect("--epsilon must be a float")
            }
            "--local-sort" => {
                let v = value("--local-sort");
                args.local_sort = LocalSortAlgo::parse(&v).unwrap_or_else(|| {
                    eprintln!("--local-sort must be 'comparison' or 'radix' (got {v})");
                    exit(2);
                });
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed must be an integer"),
            "--threads" => {
                args.threads =
                    Some(value("--threads").parse().expect("--threads must be an integer"))
            }
            "--sequential" => args.sequential = true,
            "--overlapped" => args.overlapped = true,
            "--trace" => args.trace = Some(value("--trace")),
            "--node-level" => args.node_level = true,
            "--tag-duplicates" => args.tag_duplicates = true,
            "--approx-histograms" => args.approx_histograms = true,
            "--extsort" => args.extsort = true,
            "--memory-cap" => {
                args.memory_cap =
                    value("--memory-cap").parse().expect("--memory-cap must be an integer")
            }
            "--run-dir" => args.run_dir = Some(value("--run-dir")),
            "--io-mode" => {
                args.io_mode = match value("--io-mode").as_str() {
                    "sync" | "synchronous" => IoMode::Synchronous,
                    "overlapped" => IoMode::Overlapped,
                    other => {
                        eprintln!("--io-mode must be 'sync' or 'overlapped' (got {other})");
                        exit(2);
                    }
                }
            }
            "--pipelined" => args.pipelined = true,
            "--prefetch-depth" => {
                args.prefetch_depth = Some(
                    value("--prefetch-depth").parse().expect("--prefetch-depth must be an integer"),
                )
            }
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                print!("{HELP}");
                exit(0);
            }
            other => {
                eprintln!("unknown flag {other}\n\n{HELP}");
                exit(2);
            }
        }
    }
    args
}

fn generate(args: &Args) -> Vec<Vec<u64>> {
    let (ranks, keys, seed) = (args.ranks, args.keys, args.seed);
    match args.dist.as_str() {
        "uniform" => KeyDistribution::Uniform.generate_per_rank(ranks, keys, seed),
        "normal" => KeyDistribution::Normal { mean_frac: 0.5, std_frac: 0.05 }
            .generate_per_rank(ranks, keys, seed),
        "exponential" => {
            KeyDistribution::Exponential { scale_frac: 0.001 }.generate_per_rank(ranks, keys, seed)
        }
        "powerlaw" => KeyDistribution::PowerLaw { gamma: 4.0 }.generate_per_rank(ranks, keys, seed),
        "staggered" => KeyDistribution::Staggered.generate_per_rank(ranks, keys, seed),
        "sorted" => KeyDistribution::Sorted.generate_per_rank(ranks, keys, seed),
        "reverse" => KeyDistribution::ReverseSorted.generate_per_rank(ranks, keys, seed),
        "allequal" => KeyDistribution::AllEqual.generate_per_rank(ranks, keys, seed),
        "fewdistinct" => {
            KeyDistribution::FewDistinct { distinct: 64 }.generate_per_rank(ranks, keys, seed)
        }
        "lambb" => ChangaDataset::lambb_like(seed).generate_keys_per_rank(ranks, keys, seed),
        "dwarf" => ChangaDataset::dwarf_like(seed).generate_keys_per_rank(ranks, keys, seed),
        other => {
            eprintln!("unknown distribution {other}\n\n{HELP}");
            exit(2);
        }
    }
}

/// Dispatch one baseline through the unified [`Sorter`] trait.
fn run_sorter(
    sorter: &dyn Sorter<u64>,
    machine: &mut Machine,
    input: Vec<Vec<u64>>,
) -> (Vec<Vec<u64>>, SortReport) {
    let outcome = sorter
        .run(machine, SortRequest::new(input))
        .unwrap_or_else(|e| panic!("{} failed: {e}", sorter.algorithm()));
    (outcome.data, outcome.report)
}

fn run(
    args: &Args,
    input: Vec<Vec<u64>>,
) -> (Vec<Vec<u64>>, SortReport, Machine, Option<ExtSortReport>) {
    let mut machine =
        Machine::new(Topology::new(args.ranks, args.cores_per_node), CostModel::bluegene_like());
    if args.sequential {
        machine = machine.with_parallelism(Parallelism::Sequential);
    }
    if args.overlapped {
        machine = machine.with_sync_model(SyncModel::Overlapped);
    }
    if args.trace.is_some() {
        machine = machine.with_tracing();
    }
    let mut ext_report = None;
    let (out, report) = match args.algorithm.as_str() {
        "hss" | "hss-one-round" | "hss-scanning" => {
            let mut config =
                HssConfig { epsilon: args.epsilon, ..HssConfig::default() }.with_seed(args.seed);
            if args.algorithm == "hss-one-round" {
                config.schedule = RoundSchedule::Theoretical { rounds: 1 };
            }
            if args.algorithm == "hss-scanning" {
                config.schedule = RoundSchedule::Theoretical { rounds: 1 };
                config.splitter_rule = SplitterRule::Scanning;
            }
            config.node_level = args.node_level;
            config.tag_duplicates = args.tag_duplicates;
            config.approximate_histograms = args.approx_histograms;
            config.local_sort = args.local_sort;
            if args.extsort {
                // Scratch runs live under a unique per-process subdirectory
                // of --run-dir and are removed again when the sort returns
                // (RAII guard), even on panic.
                let run_dir = args.run_dir.clone().unwrap_or_else(|| {
                    std::env::temp_dir().join("hss-demo").to_string_lossy().into_owned()
                });
                let mut policy =
                    ExtSortPolicy::new(args.memory_cap, run_dir).with_io_mode(args.io_mode);
                if args.pipelined {
                    policy = policy.with_pipelined();
                }
                if let Some(depth) = args.prefetch_depth {
                    policy = policy.with_prefetch_depth(depth);
                }
                config = config.with_ext_sort(policy);
                let (outcome, ext) = HssSorter::new(config).sort_out_of_core(&mut machine, input);
                ext_report = Some(ext);
                (outcome.data, outcome.report)
            } else {
                let outcome = HssSorter::new(config).sort(&mut machine, input);
                (outcome.data, outcome.report)
            }
        }
        "sample-regular" => {
            let cfg = SampleSortConfig {
                local_sort: args.local_sort,
                ..SampleSortConfig::regular(args.epsilon)
            };
            run_sorter(&cfg, &mut machine, input)
        }
        "sample-random" => {
            let cfg = SampleSortConfig {
                local_sort: args.local_sort,
                ..SampleSortConfig::random(args.epsilon)
            };
            run_sorter(&cfg, &mut machine, input)
        }
        "histogram" => {
            let mut cfg = HistogramSortConfig::new(args.epsilon, args.ranks);
            cfg.local_sort = args.local_sort;
            run_sorter(&cfg, &mut machine, input)
        }
        "overpartition" => {
            let mut cfg = OverPartitioningConfig::recommended(args.ranks);
            cfg.local_sort = args.local_sort;
            run_sorter(&cfg, &mut machine, input)
        }
        "bitonic" => {
            let (out, rep) = bitonic_sort_with(
                &mut machine,
                input,
                hss_repro::partition::ExchangeEngine::Flat,
                args.local_sort,
            );
            (out, rep)
        }
        "radix" => {
            let mut cfg = RadixConfig::recommended(args.ranks);
            cfg.local_sort = args.local_sort;
            run_sorter(&cfg, &mut machine, input)
        }
        other => {
            eprintln!("unknown algorithm {other}\n\n{HELP}");
            exit(2);
        }
    };
    (out, report, machine, ext_report)
}

/// JSON document written by `--trace`: run metadata, the full per-rank
/// timeline (one span per participating rank per superstep) and the
/// extracted critical path.
#[derive(serde::Serialize)]
struct TraceDump {
    algorithm: String,
    ranks: usize,
    sync_model: String,
    makespan_seconds: f64,
    events: Vec<hss_repro::sim::TraceEvent>,
    critical_path: Vec<hss_repro::sim::CriticalHop>,
}

/// Serialise the machine's trace (per-rank spans plus the extracted
/// critical path) as JSON to `path`.
fn dump_trace(path: &str, machine: &Machine, report: &SortReport) {
    let trace = machine.trace();
    let doc = TraceDump {
        algorithm: report.algorithm.clone(),
        ranks: machine.ranks(),
        sync_model: machine.sync_model().name().to_string(),
        makespan_seconds: machine.simulated_time(),
        events: trace.events().to_vec(),
        critical_path: trace.critical_path(),
    };
    match std::fs::write(path, serde_json::to_string_pretty(&doc).expect("trace serialises")) {
        Ok(()) => println!("trace written to {path} ({} events)", trace.len()),
        Err(e) => {
            eprintln!("could not write trace to {path}: {e}");
            exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if args.overlapped && args.node_level {
        eprintln!(
            "--overlapped and --node-level cannot be combined: node-level \
             partitioning has no staged-exchange pipeline yet"
        );
        exit(2);
    }
    if args.extsort && !args.algorithm.starts_with("hss") {
        eprintln!("--extsort only applies to the hss algorithms");
        exit(2);
    }
    if args.extsort && (args.node_level || args.tag_duplicates) {
        eprintln!(
            "--extsort cannot be combined with --node-level or --tag-duplicates: \
             the out-of-core tier is flat and rank-level"
        );
        exit(2);
    }
    if args.pipelined && !args.extsort {
        eprintln!("--pipelined requires --extsort");
        exit(2);
    }
    if args.pipelined && args.approx_histograms {
        eprintln!(
            "--pipelined determines splitters from run files; \
             it cannot be combined with --approx-histograms"
        );
        exit(2);
    }
    if args.prefetch_depth.is_some() && !args.extsort {
        eprintln!("--prefetch-depth requires --extsort");
        exit(2);
    }
    if args.prefetch_depth.is_some_and(|d| d < 2) {
        eprintln!("--prefetch-depth must be at least 2 (double buffering)");
        exit(2);
    }
    if let Some(threads) = args.threads {
        // Must happen before anything touches the pool (key generation
        // below already runs on it).
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("--threads must be set before the global pool is used");
    }
    println!(
        "generating {} x {} = {} keys ({}) ...",
        args.ranks,
        args.keys,
        args.ranks * args.keys,
        args.dist
    );
    let input = generate(&args);
    let reference = if args.verify { Some(input.clone()) } else { None };

    let start = std::time::Instant::now();
    let (output, report, machine, ext_report) = run(&args, input);
    let wall = start.elapsed().as_secs_f64();

    println!("\nalgorithm        : {}", report.algorithm);
    println!("sync model       : {}", report.sync_model);
    println!("local sort       : {}", report.local_sort);
    println!("local sort wall  : {:.3} s", report.metrics.phase(Phase::LocalSort).wall_seconds);
    println!("simulated time   : {:.6} s", report.simulated_seconds());
    println!("simulated makespan: {:.6} s", report.makespan_seconds);
    println!("host wall time   : {wall:.3} s");
    println!("host threads     : {}", report.metrics.host_threads());
    println!("load imbalance   : {:.4}", report.imbalance());
    if let Some(sp) = &report.splitters {
        println!("histogram rounds : {}", sp.rounds_executed());
        println!("sample keys      : {}", sp.total_sample_size);
    }
    println!("messages         : {}", report.metrics.total_messages());
    if let Some(ext) = &ext_report {
        println!(
            "\nout-of-core tier ({} I/O, cap {} bytes/rank):",
            args.io_mode.name(),
            args.memory_cap
        );
        println!("  spilled elems  : {}", ext.elements);
        println!("  runs formed    : {}", ext.runs_formed);
        println!("  merge passes   : {}", ext.merge_passes);
        println!("  disk traffic   : {} B written, {} B read", ext.bytes_written, ext.bytes_read);
        println!(
            "  I/O wait       : {:.3} s of {:.3} s wall ({:.1}%)",
            ext.io_wait_seconds,
            ext.wall_seconds,
            100.0 * ext.io_wait_fraction()
        );
        // Where the modelled disk traffic landed: formation (LocalSort),
        // splitter probes (Sampling + Histogramming), the drain or
        // bucketized sends (DataExchange), and spill merges (Merge).
        println!("  disk by phase  :");
        for phase in [
            Phase::LocalSort,
            Phase::Sampling,
            Phase::Histogramming,
            Phase::DataExchange,
            Phase::Merge,
        ] {
            let pm = machine.metrics().phase(phase);
            if pm.disk_words > 0 {
                println!(
                    "    {:<13}: {} words ({:.6} s simulated I/O wait share)",
                    format!("{phase:?}"),
                    pm.disk_words,
                    pm.simulated_seconds
                );
            }
        }
        if args.pipelined {
            // The materialized arm writes each spilled rank's merged array
            // to scratch and reads it back before the exchange; the
            // pipelined drain skips both directions.
            let rank_bytes = args.keys * std::mem::size_of::<u64>();
            let spilled_ranks = if rank_bytes > args.memory_cap { args.ranks } else { 0 };
            let avoided = 2 * spilled_ranks * rank_bytes;
            println!(
                "  round-trips avoided: {} B of scratch traffic across {} spilled ranks \
                 (merged-file write + read-back elided)",
                avoided, spilled_ranks
            );
        }
    }
    println!("\nper-phase breakdown:\n{}", report.metrics);

    if let Some(path) = &args.trace {
        dump_trace(path, &machine, &report);
    }

    if let Some(reference) = reference {
        match verify_global_sort(&reference, &output) {
            Ok(()) => println!("verification: output is a correct global sort"),
            Err(e) => {
                eprintln!("verification FAILED: {e}");
                exit(1);
            }
        }
    }
}
