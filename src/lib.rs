//! `hss-repro` — umbrella crate for the *Histogram Sort with Sampling*
//! reproduction.
//!
//! This crate re-exports the workspace members so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`sim`] — the BSP cluster simulator substrate ([`hss_sim`]);
//! * [`keygen`] — key types and workload generators ([`hss_keygen`]);
//! * [`lsort`] — the in-place MSD radix local-sort subsystem
//!   ([`hss_lsort`]);
//! * [`partition`] — shared partitioning primitives ([`hss_partition`]);
//! * [`core`] — Histogram Sort with Sampling itself ([`hss_core`]);
//! * [`extsort`] — the bounded-memory out-of-core tier ([`hss_extsort`]);
//! * [`baselines`] — the comparison algorithms ([`hss_baselines`]);
//! * [`analysis`] — the paper's closed-form cost model ([`hss_analysis`]);
//! * [`service`] — the epoch-based sorting service with warm-started
//!   splitters and a rank/percentile query API ([`hss_service`]).
//!
//! The [`prelude`] pulls in the handful of types most programs need.
//!
//! ```
//! use hss_repro::prelude::*;
//!
//! let input = KeyDistribution::Uniform.generate_per_rank(8, 1_000, 1);
//! let mut machine = Machine::flat(8);
//! let outcome = HssSorter::new(HssConfig::default()).sort(&mut machine, input);
//! assert!(outcome.report.load_balance.satisfies(0.05));
//! ```

#![warn(missing_docs)]

pub use hss_analysis as analysis;
pub use hss_baselines as baselines;
pub use hss_core as core;
pub use hss_extsort as extsort;
pub use hss_keygen as keygen;
pub use hss_lsort as lsort;
pub use hss_partition as partition;
pub use hss_service as service;
pub use hss_sim as sim;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use hss_core::{
        ExtSortPolicy, HssConfig, HssConfigBuilder, HssSorter, LocalSortAlgo, RoundSchedule,
        SortOutcome, SortRequest, Sorter, SplitterRule, WarmStart,
    };
    pub use hss_extsort::{ExtSortConfig, ExtSortReport, ExternalSorter, IoMode};
    pub use hss_keygen::{ChangaDataset, Key, KeyDistribution, Keyed, Record, TaggedKey};
    pub use hss_partition::{LoadBalance, SplitterSet};
    pub use hss_service::{DriftingWorkload, EpochReport, ServiceConfig, SortService};
    pub use hss_sim::{CostModel, Machine, Parallelism, Phase, SyncModel, Timeline, Topology};
}
