//! Offline vendored stub of `rand_chacha`: a real ChaCha8 keystream
//! generator behind the workspace's [`rand`] stub traits.
//!
//! The block function is the genuine ChaCha quarter-round construction with
//! 8 rounds, keyed by a SplitMix64 expansion of the 64-bit seed, so streams
//! are deterministic and high-quality. They are **not** byte-compatible with
//! the real `rand_chacha` crate (which seeds differently); nothing in this
//! workspace depends on that.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 rounds, mirroring `rand_chacha::ChaCha8Rng`.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter state fed to the block function.
    state: [u32; 16],
    /// Buffered keystream words from the current block.
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "buffer exhausted".
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column round + diagonal round).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit key.
        let mut sm = state;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut st = [0u32; 16];
        st[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let k = next();
            st[4 + 2 * i] = k as u32;
            st[5 + 2 * i] = (k >> 32) as u32;
        }
        // Words 12..16: block counter and nonce, all zero initially.
        ChaCha8Rng { state: st, buf: [0; 16], idx: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 2 > 16 {
            self.refill();
        }
        let lo = self.buf[self.idx] as u64;
        let hi = self.buf[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::ChaCha8Rng;
    use rand::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(0x5EED);
        let mut b = ChaCha8Rng::seed_from_u64(0x5EED);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same}/64 matched");
    }

    #[test]
    fn keystream_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        // 1024 draws * 64 bits: expect ~32768 set bits.
        assert!((31_000..34_000).contains(&ones), "{ones} set bits");
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x = rng.gen_range(0u64..100);
        assert!(x < 100);
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
