//! Offline vendored stub of the `proptest` API surface this workspace uses.
//!
//! The build container has no network access, so this crate re-implements
//! the pieces the test-suite relies on: the [`Strategy`] trait with an
//! associated `Value`, `any::<T>()`, range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro (including
//! `#![proptest_config(..)]`), [`ProptestConfig`], and the `prop_assert*`
//! macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the sampled inputs' debug output. Case counts come from
//! [`ProptestConfig::cases`], whose default honours the `PROPTEST_CASES`
//! environment variable so CI can bound test time.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The generator driving all strategies (deterministic per test).
pub type TestRng = SmallRng;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each `#[test]` inside [`proptest!`] runs.
    pub cases: u32,
    /// Accepted for source compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(256);
        ProptestConfig { cases, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// Construct a config running `cases` cases (mirrors the real crate).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// A source of arbitrary values: the stub's take on `proptest::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value. (Real proptest builds a value *tree* to support
    /// shrinking; the stub just samples.)
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy for "any value of `T`", produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniformly sample any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draw a uniformly arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $gen:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$gen>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, wide dynamic range; avoids NaN/inf which
        // the real `any::<f64>()` also excludes by default.
        let mag: f64 = rng.gen::<f64>() * 1e12;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: each element from `element`, length uniform in
    /// `len` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Build the deterministic per-test generator: seeded from the test name,
/// or from `PROPTEST_RNG_SEED` when set (for reproducing CI failures).
pub fn test_rng(test_name: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_RNG_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            return TestRng::seed_from_u64(seed);
        }
    }
    // FNV-1a over the test name keeps runs reproducible across processes.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// The macro-driven test runner: everything `use proptest::prelude::*`
/// normally brings in.
pub mod prelude {
    pub use crate::collection::vec as prop_vec;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Define property tests (stub of `proptest::proptest!`).
///
/// Supports the forms this workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then `#[test] fn name(pat in strategy, ...)
/// { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for __case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under [`proptest!`] (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under [`proptest!`] (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under [`proptest!`] (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in vec(any::<u32>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn tuples_and_mut_patterns_work(mut pair in (any::<u64>(), 1usize..4)) {
            pair.0 = pair.0.wrapping_add(1);
            prop_assert!(pair.1 >= 1);
            prop_assert_ne!(pair.1, 0);
        }
    }

    #[test]
    fn config_default_reads_env() {
        // Whatever the ambient env, the default must be positive.
        assert!(ProptestConfig::default().cases > 0);
    }

    #[test]
    fn nested_vec_strategy_composes() {
        let strat = vec(vec(any::<u64>(), 0..3), 1..4);
        let mut rng = crate::test_rng("nested");
        for _ in 0..50 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|inner| inner.len() < 3));
        }
    }
}
