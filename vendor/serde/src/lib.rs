//! Offline vendored stub of the `serde` API surface this workspace uses.
//!
//! The build container has no network access, so instead of the real serde
//! framework this crate provides a direct-to-[`Value`] serialization model:
//!
//! * [`Serialize`] — one method, [`Serialize::to_value`], turning a value
//!   into a JSON-shaped [`Value`] tree. `#[derive(Serialize)]` (from the
//!   sibling `serde_derive` stub) generates field-by-field impls that match
//!   real serde's externally-tagged defaults.
//! * [`Deserialize`] — a marker trait only; nothing in the workspace
//!   deserializes yet. `#[derive(Deserialize)]` emits the marker impl so the
//!   existing derives keep compiling.
//!
//! `serde_json` (also vendored) pretty-prints the [`Value`] tree.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree, the target of all stub serialization.
///
/// Object keys keep insertion order (fields serialize in declaration order,
/// as with real `serde_json` when `preserve_order` is enabled).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Build the [`Value`] representation of `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}

/// Marker for types whose `#[derive(Deserialize)]` the workspace keeps;
/// actual deserialization is unimplemented in the stub.
pub trait Deserialize {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Float(self.as_secs_f64())
    }
}
impl Deserialize for std::time::Duration {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: std::fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect())
    }
}
impl<K, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<K: std::fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K, V: Deserialize, S> Deserialize for HashMap<K, V, S> {}

#[cfg(test)]
mod tests {
    use super::{Serialize, Value};

    #[test]
    fn primitives_serialize_to_expected_variants() {
        assert_eq!(3u64.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn containers_serialize_structurally() {
        assert_eq!(vec![1u64, 2].to_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        assert_eq!(
            (1u64, "x".to_string()).to_value(),
            Value::Array(vec![Value::UInt(1), Value::String("x".into())])
        );
    }
}
