//! Offline vendored stub of the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build container has no network access, so instead of the real `rand`
//! crate the workspace vendors this minimal, dependency-free implementation
//! of the same trait surface: [`RngCore`], [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`, `fill`-free) and [`SeedableRng`] (`seed_from_u64`).
//!
//! Generators produced through this stub are deterministic and of good
//! statistical quality (xoshiro256++-class), but are **not** stream-compatible
//! with the real `rand`/`rand_chacha` crates. All workspace tests and
//! experiments derive their expectations from this stub, so that is fine.

#![warn(missing_docs)]

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be seeded from a single `u64`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed (mirrors
    /// `rand::SeedableRng::seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly "at standard" from a generator
/// (the stub's equivalent of `rand::distributions::Standard`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts (the stub's equivalent of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Rejection-free multiply-shift; bias is negligible for the
                // span sizes this workspace uses (all far below 2^64).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start.wrapping_add(hi)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::standard_sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::standard_sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly "at standard" (full range for
    /// integers, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`, matching the real `rand` crate so
    /// invalid probabilities fail loudly instead of silently saturating.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} is outside [0.0, 1.0]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator namespace (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++-class).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as the real rand crate does.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z = rng.gen_range(0usize..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(11);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
