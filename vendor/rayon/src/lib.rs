//! Offline vendored implementation of the `rayon` API surface this
//! workspace uses — **a real thread pool, not a sequential stub**.
//!
//! The build container has no network access, so this crate re-implements
//! the parts of `rayon` the workspace calls on top of `std::thread`:
//!
//! * [`mod@iter`] — splittable parallel iterators (`par_iter`,
//!   `par_iter_mut`, `into_par_iter` with `map`/`zip`/`enumerate`/
//!   `collect`/`for_each`/`sum`/`reduce`), driven by chunk-splitting over
//!   the pool;
//! * `pool` — the worker threads, injector queue, [`join`], the lazily
//!   created global pool (honouring `RAYON_NUM_THREADS`), and
//!   [`ThreadPoolBuilder`]/[`ThreadPool`] for scoped custom pools;
//! * `scope` — structured task scopes whose tasks may borrow stack data.
//!
//! Every element-producing operation returns *exactly* what its sequential
//! counterpart would: chunk results are recombined in order, so `collect`/
//! `for_each`/`map` are bitwise deterministic regardless of thread count,
//! and so are `sum`/`reduce` for associative operations (all reductions
//! this workspace performs are integer ones; floating-point reductions may
//! regroup across thread counts).  The sequential execution path of the
//! simulator remains the determinism *oracle*, and
//! `tests/parallel_differential.rs` in the workspace root holds the proof.
//! Panics inside workers are caught and re-thrown on the calling thread.
//! With `RAYON_NUM_THREADS=1` (or one available core) everything degrades
//! to inline sequential execution with no cross-thread traffic.

#![warn(missing_docs)]

pub mod iter;
mod pool;
mod scope;

pub use iter::{
    FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
    IntoParallelRefMutIterator, ParallelIterator,
};
pub use pool::{current_num_threads, join, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};
pub use scope::{scope, Scope};

/// Everything call sites normally import via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::{Barrier, Mutex};
    use std::thread;

    use super::prelude::*;
    use super::{join, scope, ThreadPoolBuilder};

    #[test]
    fn par_adapters_match_sequential() {
        let v = vec![3u64, 1, 2];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![4, 2, 3]);

        let sum: u64 = v.into_par_iter().sum();
        assert_eq!(sum, 6);

        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn adapters_preserve_order_on_a_multithreaded_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let n = 10_000usize;
        let out: Vec<usize> = pool.install(|| (0..n).into_par_iter().map(|i| i * i).collect());
        let expected: Vec<usize> = (0..n).map(|i| i * i).collect();
        assert_eq!(out, expected);

        let enumerated: Vec<(usize, usize)> = pool.install(|| {
            (100..100 + n).into_par_iter().enumerate().map(|(i, x)| (i, x - 100)).collect()
        });
        assert!(enumerated.iter().all(|&(i, x)| i == x));

        let zipped: Vec<u64> = pool.install(|| {
            let a: Vec<u64> = (0..500).collect();
            let b: Vec<u64> = (0..400).map(|x| x * 10).collect();
            a.par_iter().zip(b).map(|(x, y)| x + y).collect()
        });
        assert_eq!(zipped.len(), 400, "zip truncates to the shorter side");
        assert_eq!(zipped[399], 399 + 3990);
    }

    #[test]
    fn empty_and_single_element_iterators() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            let empty: Vec<u64> = Vec::new();
            let out: Vec<u64> = empty.par_iter().map(|x| x * 2).collect();
            assert!(out.is_empty());
            let sum: u64 = Vec::<u64>::new().into_par_iter().sum();
            assert_eq!(sum, 0);
            assert_eq!(Vec::<u64>::new().par_iter().max(), None);

            let single = [41u64];
            let out: Vec<u64> = single.as_slice().par_iter().map(|x| x + 1).collect();
            assert_eq!(out, vec![42]);
            let mut single = vec![1u64];
            single.par_iter_mut().for_each(|x| *x += 9);
            assert_eq!(single, vec![10]);
        });
    }

    #[test]
    fn reduce_and_min_max_match_sequential() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            let v: Vec<u64> = (0..1000).map(|i| (i * 2654435761u64) % 1000).collect();
            assert_eq!(v.par_iter().max(), v.iter().max());
            assert_eq!(v.par_iter().min(), v.iter().min());
            let total = v.clone().into_par_iter().reduce(|| 0u64, |a, b| a + b);
            assert_eq!(total, v.iter().sum::<u64>());
            // count() must drive elements through the chain (side effects
            // included), like genuine rayon.
            let visited = std::sync::atomic::AtomicUsize::new(0);
            let counted = v
                .par_iter()
                .map(|x| {
                    visited.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    x
                })
                .count();
            assert_eq!(counted, 1000);
            assert_eq!(visited.into_inner(), 1000);
        });
    }

    #[test]
    fn work_executes_on_multiple_os_threads() {
        // Two tasks rendezvous at a barrier inside the pool: this cannot
        // complete unless two *distinct* OS threads execute closures
        // concurrently, which is the acceptance criterion for the pool
        // being genuinely parallel.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let barrier = Barrier::new(2);
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            scope(|s| {
                for _ in 0..2 {
                    s.spawn(|_| {
                        barrier.wait();
                        ids.lock().unwrap().insert(thread::current().id());
                    });
                }
            });
        });
        assert_eq!(ids.into_inner().unwrap().len(), 2, "expected two distinct worker threads");
    }

    #[test]
    fn scope_with_borrowed_data() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let mut values = vec![0u64; 4];
        pool.install(|| {
            let (left, right) = values.split_at_mut(2);
            scope(|s| {
                s.spawn(move |_| {
                    left[0] = 1;
                    left[1] = 2;
                });
                s.spawn(move |_| {
                    right[0] = 3;
                    right[1] = 4;
                });
            });
        });
        assert_eq!(values, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_scope_spawns_complete_before_scope_returns() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let counter = Mutex::new(0u64);
        pool.install(|| {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|inner| {
                        *counter.lock().unwrap() += 1;
                        // Tasks spawned from tasks are awaited too.
                        inner.spawn(|_| {
                            *counter.lock().unwrap() += 10;
                        });
                    });
                }
            });
        });
        assert_eq!(*counter.lock().unwrap(), 44);
    }

    #[test]
    fn panic_in_worker_propagates_to_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();

        // Through a parallel iterator...
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                let v: Vec<u64> = (0..64).collect();
                v.par_iter().for_each(|&x| {
                    if x == 33 {
                        panic!("worker boom");
                    }
                });
            });
        }));
        assert!(result.is_err(), "par_iter panic must reach the caller");

        // ... and through a scope spawn.
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                scope(|s| {
                    s.spawn(|_| panic!("scope boom"));
                });
            });
        }));
        assert!(result.is_err(), "scope panic must reach the caller");

        // The pool remains usable afterwards.
        let sum: u64 = pool.install(|| (0u64..10).into_par_iter().sum());
        assert_eq!(sum, 45);
    }

    #[test]
    fn one_thread_pool_degrades_to_sequential() {
        // The documented RAYON_NUM_THREADS=1 behaviour, exercised through an
        // explicit one-thread pool (the env var itself configures the
        // global pool the same way; CI runs the whole suite under both
        // RAYON_NUM_THREADS=1 and =4).
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ids: HashSet<thread::ThreadId> = pool.install(|| {
            let v: Vec<u64> = (0..256).collect();
            let ids = Mutex::new(HashSet::new());
            let doubled: Vec<u64> = v
                .par_iter()
                .map(|&x| {
                    ids.lock().unwrap().insert(thread::current().id());
                    x * 2
                })
                .collect();
            assert_eq!(doubled, v.iter().map(|&x| x * 2).collect::<Vec<_>>());
            scope(|s| {
                s.spawn(|_| {
                    ids.lock().unwrap().insert(thread::current().id());
                });
            });
            ids.into_inner().unwrap()
        });
        assert_eq!(ids.len(), 1, "a one-thread pool must run everything on one thread");
    }
}
