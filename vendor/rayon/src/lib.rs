//! Offline vendored stub of the `rayon` parallel-iterator API surface this
//! workspace uses.
//!
//! `par_iter` / `par_iter_mut` / `into_par_iter` simply return the standard
//! sequential iterators, so every adapter (`map`, `zip`, `collect`, ...) is
//! the plain [`Iterator`] machinery and results are bitwise identical to the
//! sequential code path. The build container has no network access, so real
//! work-stealing parallelism is deferred until the genuine crate (or a
//! thread-pool implementation here) can be dropped in — the call sites won't
//! have to change.

#![warn(missing_docs)]

/// Conversion into a "parallel" (here: sequential) iterator by value.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Mirror of `rayon::iter::IntoParallelIterator::into_par_iter`.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// Conversion into a "parallel" iterator over shared references.
pub trait IntoParallelRefIterator<'data> {
    /// The iterator produced by [`IntoParallelRefIterator::par_iter`].
    type Iter: Iterator;

    /// Mirror of `rayon::iter::IntoParallelRefIterator::par_iter`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
{
    type Iter = <&'data T as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Conversion into a "parallel" iterator over mutable references.
pub trait IntoParallelRefMutIterator<'data> {
    /// The iterator produced by [`IntoParallelRefMutIterator::par_iter_mut`].
    type Iter: Iterator;

    /// Mirror of `rayon::iter::IntoParallelRefMutIterator::par_iter_mut`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoIterator,
{
    type Iter = <&'data mut T as IntoIterator>::IntoIter;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Run two closures (sequentially here; in parallel under real rayon).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The number of threads the "pool" uses (always 1 in this stub).
pub fn current_num_threads() -> usize {
    1
}

/// Everything call sites normally import via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_adapters_match_sequential() {
        let v = vec![3u64, 1, 2];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![4, 2, 3]);

        let sum: u64 = v.into_par_iter().sum();
        assert_eq!(sum, 6);

        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
