//! Parallel iterators: splittable, length-aware iterators driven by the
//! pool in `crate::pool`.
//!
//! The model is a simplified `rayon`: a [`ParallelIterator`] knows its exact
//! length and can split itself at an index.  Terminal operations
//! (`collect`, `for_each`, `sum`, ...) split the iterator into a few chunks
//! per pool thread with recursive [`join`] calls, run each chunk
//! sequentially on whichever thread picks it up, and recombine the chunk
//! results *in order* — so every operation returns exactly what its
//! sequential counterpart would, regardless of thread count or scheduling.
//! On a one-thread pool the driver skips splitting entirely and the chunk
//! runs inline on the caller.
//!
//! Adapters (`map`, `enumerate`, `zip`) are lazy: they wrap the underlying
//! iterator and split with it.  Closures are shared across threads behind an
//! [`Arc`], so they only need `Fn + Send + Sync` (no `Clone`).

use std::iter::Sum;
use std::ops::Range;
use std::sync::Arc;

use crate::pool::{current_registry, join};

// ---------------------------------------------------------------------------
// Core trait
// ---------------------------------------------------------------------------

/// An exactly-sized, splittable iterator whose chunks may be consumed on
/// different pool threads.
pub trait ParallelIterator: Sized + Send {
    /// The type of element produced.
    type Item: Send;
    /// The sequential iterator used to drain one chunk on one thread.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Exact number of remaining elements.
    fn len(&self) -> usize;

    /// Whether the iterator is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into the first `index` elements and the rest.
    /// `index` must be `<= self.len()`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Convert this chunk into a sequential iterator.
    fn into_seq_iter(self) -> Self::SeqIter;

    // -- adapters ----------------------------------------------------------

    /// Transform every element with `f` (applied on the consuming thread).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f: Arc::new(f) }
    }

    /// Pair every element with its global index, like [`Iterator::enumerate`].
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// Iterate two parallel iterators in lockstep, truncating to the
    /// shorter one.
    fn zip<B>(self, other: B) -> Zip<Self, B::Iter>
    where
        B: IntoParallelIterator,
    {
        let other = other.into_par_iter();
        let n = self.len().min(other.len());
        let (a, _) = self.split_at(n);
        let (b, _) = other.split_at(n);
        Zip { a, b }
    }

    // -- terminals ---------------------------------------------------------

    /// Apply `f` to every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        execute_in_chunks(self, &|chunk: Self| {
            for item in chunk.into_seq_iter() {
                f(item);
            }
        });
    }

    /// Collect all elements, in order, into a [`FromParallelIterator`]
    /// collection (e.g. `Vec`).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Reduce all elements with `op`, seeding every chunk with `identity()`.
    ///
    /// The grouping of chunk-level reductions depends on the pool size, so
    /// the result is deterministic only when `op` is associative (true for
    /// the integer reductions this workspace performs; floating-point
    /// addition is not associative and may differ across thread counts).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let pieces =
            execute_in_chunks(self, &|chunk: Self| chunk.into_seq_iter().fold(identity(), &op));
        pieces.into_iter().fold(identity(), &op)
    }

    /// Sum all elements, like [`Iterator::sum`].  Deterministic across
    /// thread counts only for associative sums (integers — see
    /// [`ParallelIterator::reduce`] for the floating-point caveat).
    fn sum<S>(self) -> S
    where
        S: Send + Sum<Self::Item> + Sum<S>,
    {
        execute_in_chunks(self, &|chunk: Self| chunk.into_seq_iter().sum::<S>()).into_iter().sum()
    }

    /// The maximum element, or `None` if empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        execute_in_chunks(self, &|chunk: Self| chunk.into_seq_iter().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// The minimum element, or `None` if empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        execute_in_chunks(self, &|chunk: Self| chunk.into_seq_iter().min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Number of elements, driving every element through the adapter chain
    /// (so upstream `map` side effects run, as under genuine rayon).
    fn count(self) -> usize {
        execute_in_chunks(self, &|chunk: Self| chunk.into_seq_iter().count()).into_iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Chunked execution driver
// ---------------------------------------------------------------------------

/// Split `iter` into a few chunks per pool thread, run `leaf` on every chunk
/// (potentially on different threads via nested `join`), and return the leaf
/// results in chunk order.  With one pool thread or one element, `leaf` runs
/// directly on the caller.
fn execute_in_chunks<P, R, LEAF>(iter: P, leaf: &LEAF) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    LEAF: Fn(P) -> R + Sync,
{
    let threads = current_registry().num_threads();
    let len = iter.len();
    if threads <= 1 || len <= 1 {
        return vec![leaf(iter)];
    }
    // A few chunks per thread so uneven per-element costs still balance.
    let target_chunks = (threads * 4).min(len).max(1);
    let depth = usize::BITS - (target_chunks - 1).leading_zeros();
    split_recursive(iter, depth, leaf)
}

fn split_recursive<P, R, LEAF>(iter: P, depth: u32, leaf: &LEAF) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    LEAF: Fn(P) -> R + Sync,
{
    if depth == 0 || iter.len() <= 1 {
        return vec![leaf(iter)];
    }
    let mid = iter.len() / 2;
    let (left, right) = iter.split_at(mid);
    let (mut left_results, right_results) =
        join(|| split_recursive(left, depth - 1, leaf), || split_recursive(right, depth - 1, leaf));
    left_results.extend(right_results);
    left_results
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Conversion into a [`ParallelIterator`] by value, like
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<P: ParallelIterator> IntoParallelIterator for P {
    type Item = P::Item;
    type Iter = P;

    fn into_par_iter(self) -> Self {
        self
    }
}

/// Conversion into a parallel iterator over shared references
/// (`par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// The element type (a shared reference).
    type Item: Send + 'data;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrow `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoParallelIterator,
{
    type Item = <&'data T as IntoParallelIterator>::Item;
    type Iter = <&'data T as IntoParallelIterator>::Iter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Conversion into a parallel iterator over mutable references
/// (`par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type (a mutable reference).
    type Item: Send + 'data;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Mutably borrow `self` as a parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoParallelIterator,
{
    type Item = <&'data mut T as IntoParallelIterator>::Item;
    type Iter = <&'data mut T as IntoParallelIterator>::Iter;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collections that can be built from a parallel iterator (the contract
/// behind [`ParallelIterator::collect`]).
pub trait FromParallelIterator<T: Send> {
    /// Build the collection, preserving the iterator's order.
    fn from_par_iter<P>(iter: P) -> Self
    where
        P: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P>(iter: P) -> Vec<T>
    where
        P: ParallelIterator<Item = T>,
    {
        let total = iter.len();
        let mut pieces = execute_in_chunks(iter, &|chunk: P| {
            let mut piece = Vec::with_capacity(chunk.len());
            piece.extend(chunk.into_seq_iter());
            piece
        });
        if pieces.len() == 1 {
            return pieces.pop().expect("one piece");
        }
        let mut out = Vec::with_capacity(total);
        for piece in pieces {
            out.extend(piece);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Producers
// ---------------------------------------------------------------------------

/// Parallel iterator over a shared slice (`&[T]` / `&Vec<T>`).
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at(index);
        (SliceIter { slice: left }, SliceIter { slice: right })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over a mutable slice (`&mut [T]` / `&mut Vec<T>`).
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send + 'a> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: left }, SliceIterMut { slice: right })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        SliceIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;

    fn into_par_iter(self) -> Self::Iter {
        SliceIterMut { slice: self.as_mut_slice() }
    }
}

/// Parallel iterator that consumes a `Vec<T>`.
pub struct VecIntoIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIntoIter<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let right = self.vec.split_off(index);
        (self, VecIntoIter { vec: right })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.vec.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIntoIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        VecIntoIter { vec: self }
    }
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: Range<T>,
}

macro_rules! range_impl {
    ($t:ty) => {
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type SeqIter = Range<$t>;

            fn len(&self) -> usize {
                if self.range.end <= self.range.start {
                    0
                } else {
                    (self.range.end - self.range.start) as usize
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeIter { range: self.range.start..mid },
                    RangeIter { range: mid..self.range.end },
                )
            }

            fn into_seq_iter(self) -> Self::SeqIter {
                self.range
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;

            fn into_par_iter(self) -> Self::Iter {
                RangeIter { range: self }
            }
        }
    };
}

range_impl!(usize);
range_impl!(u32);
range_impl!(u64);

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Parallel `map` adapter; see [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: Arc<F>,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type SeqIter = SeqMap<B::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (Map { base: left, f: Arc::clone(&self.f) }, Map { base: right, f: self.f })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        SeqMap { base: self.base.into_seq_iter(), f: self.f }
    }
}

/// Sequential drain of one [`Map`] chunk.
pub struct SeqMap<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for SeqMap<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.base.next().map(|item| (self.f)(item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

/// Parallel `enumerate` adapter; see [`ParallelIterator::enumerate`].
pub struct Enumerate<B> {
    base: B,
    offset: usize,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);
    type SeqIter = SeqEnumerate<B::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (left, right) = self.base.split_at(index);
        (
            Enumerate { base: left, offset: self.offset },
            Enumerate { base: right, offset: self.offset + index },
        )
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        SeqEnumerate { base: self.base.into_seq_iter(), next_index: self.offset }
    }
}

/// Sequential drain of one [`Enumerate`] chunk (offset-aware).
pub struct SeqEnumerate<I> {
    base: I,
    next_index: usize,
}

impl<I: Iterator> Iterator for SeqEnumerate<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.base.next()?;
        let index = self.next_index;
        self.next_index += 1;
        Some((index, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.base.size_hint()
    }
}

/// Parallel `zip` adapter; see [`ParallelIterator::zip`].  Both sides are
/// pre-truncated to the common length, so they always split in lockstep.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn len(&self) -> usize {
        self.a.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (Zip { a: al, b: bl }, Zip { a: ar, b: br })
    }

    fn into_seq_iter(self) -> Self::SeqIter {
        self.a.into_seq_iter().zip(self.b.into_seq_iter())
    }
}
