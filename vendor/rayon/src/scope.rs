//! Structured task scopes: spawn tasks that borrow from the enclosing
//! stack frame, like `rayon::scope`.
//!
//! [`scope`] creates a [`Scope`] whose [`Scope::spawn`]ed closures may
//! borrow data with the `'scope` lifetime.  The call does not return until
//! every spawned task (including tasks spawned by tasks) has finished, so
//! the borrows are always valid; while waiting, the calling thread executes
//! other queued pool jobs.  The first panic from the closure or from any
//! spawned task is re-thrown by `scope` after all tasks completed.  On a
//! one-thread pool, tasks run inline at the `spawn` call site — fully
//! sequential, same results.

use std::any::Any;
use std::marker::PhantomData;
use std::mem;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::pool::{current_registry, Job, Registry};

/// Shared bookkeeping of one scope: outstanding task count and the first
/// captured panic.
struct ScopeState {
    registry: Arc<Registry>,
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn task_started(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn task_finished(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.all_done.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Wait until every spawned task finished, helping the pool meanwhile.
    fn wait_all(&self) {
        loop {
            if *self.pending.lock().unwrap() == 0 {
                return;
            }
            if let Some(job) = self.registry.try_pop() {
                job.run();
                continue;
            }
            let guard = self.pending.lock().unwrap();
            if *guard == 0 {
                return;
            }
            // Re-poll the queue periodically in case a job lands between
            // the `try_pop` above and this wait.
            let _ = self.all_done.wait_timeout(guard, Duration::from_micros(500)).unwrap();
        }
    }
}

/// A scope in which tasks borrowing `'scope` data can be spawned; created
/// by [`scope`].
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant in 'scope, and neither Send nor Sync: each task gets its
    // own `Scope` handle instead of sharing one across threads.
    _marker: PhantomData<*mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task that may borrow anything outliving the scope.  The task
    /// runs on some pool thread (inline on one-thread pools) before the
    /// enclosing [`scope`] call returns.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        state.task_started();
        let task = move || {
            let task_scope = Scope { state: Arc::clone(&state), _marker: PhantomData };
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(&task_scope)));
            if let Err(payload) = result {
                state.record_panic(payload);
            }
            state.task_finished();
        };
        if self.state.registry.num_threads() <= 1 {
            // Sequential degradation: run at the spawn site.
            task();
            return;
        }
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
        // SAFETY: `scope` blocks until `pending` drops to zero, so the task
        // (and everything it borrows with 'scope) outlives its execution;
        // extending the closure's lifetime to 'static never outlives the
        // borrowed data.
        let job: Box<dyn FnOnce() + Send + 'static> =
            unsafe { mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, _>(job) };
        self.state.registry.inject(Job::Heap(job));
    }
}

/// Create a scope, run `op` in it, wait for every spawned task, and return
/// `op`'s result.  See the module docs for the guarantees.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let state = Arc::new(ScopeState {
        registry: current_registry(),
        pending: Mutex::new(0),
        all_done: Condvar::new(),
        panic: Mutex::new(None),
    });
    let s = Scope { state: Arc::clone(&state), _marker: PhantomData };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    // Tasks may borrow this frame: wait for all of them even on panic.
    state.wait_all();
    let task_panic = state.panic.lock().unwrap().take();
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = task_panic {
                panic::resume_unwind(payload);
            }
            value
        }
    }
}
