//! The thread pool underneath every parallel operation in this crate.
//!
//! A [`Registry`] owns a shared injector queue and a set of worker OS
//! threads.  Parallel operations submit *jobs* to the queue; workers (and
//! any thread blocked waiting for a job it submitted) pop and execute them.
//! Two job flavours exist:
//!
//! * **stack jobs** ([`StackJob`]) live on the stack of a thread that blocks
//!   until the job completes (`join`, `ThreadPool::install`); their closures
//!   may borrow from that stack because the owner provably outlives them;
//! * **heap jobs** (boxed closures) are detached until their owning
//!   [`scope`](crate::scope()) waits for them.
//!
//! Threads that wait for a job *help* while waiting: they pop and run other
//! queued jobs instead of blocking, which makes nested `join`/`scope` calls
//! deadlock-free even when every worker is busy.  Panics inside a job are
//! caught on the executing thread and re-thrown on the thread that waits for
//! the job, mirroring `rayon`'s behaviour.
//!
//! The global pool is created lazily on first use and honours the standard
//! `RAYON_NUM_THREADS` environment variable (unset, `0` or unparsable values
//! fall back to [`std::thread::available_parallelism`]).  With one thread,
//! every operation degrades to plain sequential execution on the caller.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// How long an idle helper sleeps before re-polling the queue.  Workers are
/// woken eagerly through the queue condvar; this bound only matters for
/// threads waiting on a latch while the queue is empty.
const HELP_POLL_INTERVAL: Duration = Duration::from_micros(500);

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a [`StackJob`] owned by a blocked thread.
///
/// Safety contract: the pointed-to job outlives its execution because the
/// owning thread blocks on the job's latch before leaving the frame.
#[derive(Copy, Clone)]
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// The pointee is owned by a thread that keeps it alive until the latch is
// set; executing it from another thread is externally synchronized.
unsafe impl Send for JobRef {}

/// A unit of queued work.
pub(crate) enum Job {
    /// Borrowed job; its owner blocks on the associated latch.
    Stack(JobRef),
    /// Owned job (e.g. a `scope` spawn); catches its own panics.
    Heap(Box<dyn FnOnce() + Send>),
}

impl Job {
    /// Execute the job on the current thread.  Never unwinds: both flavours
    /// catch panics and forward them to whoever waits for the job.
    pub(crate) fn run(self) {
        match self {
            Job::Stack(r) => unsafe { (r.execute)(r.data) },
            Job::Heap(f) => f(),
        }
    }
}

/// A closure plus a slot for its result, allocated on the stack of the
/// thread that waits for it.  The closure runs exactly once on an arbitrary
/// pool thread; panics are captured into the result slot and re-thrown by
/// [`StackJob::into_result`].
pub(crate) struct StackJob<F, R> {
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    pub(crate) latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(f: F) -> Self {
        Self { f: UnsafeCell::new(Some(f)), result: UnsafeCell::new(None), latch: Latch::new() }
    }

    /// Erase the job to a queueable reference.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive (and not move it) until the job's
    /// latch is set.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef { data: self as *const Self as *const (), execute: Self::execute }
    }

    unsafe fn execute(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let f = (*this.f.get()).take().expect("stack job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        *this.result.get() = Some(result);
        // Setting the latch releases the result write to the waiting thread
        // (the latch mutex provides the necessary ordering).
        this.latch.set();
    }

    /// Consume the result after the latch was observed set, re-throwing a
    /// captured panic.
    pub(crate) fn into_result(self) -> R {
        let result =
            self.result.into_inner().expect("stack job result missing after latch was set");
        match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

// ---------------------------------------------------------------------------
// Latch
// ---------------------------------------------------------------------------

/// A one-shot "done" flag a thread can block on.
pub(crate) struct Latch {
    done: Mutex<bool>,
    cond: Condvar,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Self { done: Mutex::new(false), cond: Condvar::new() }
    }

    pub(crate) fn set(&self) {
        *self.done.lock().unwrap() = true;
        self.cond.notify_all();
    }

    /// Block until the latch is set, executing other queued jobs while
    /// waiting so that nested parallel calls cannot deadlock the pool.
    pub(crate) fn wait_while_helping(&self, registry: &Registry) {
        loop {
            if let Some(job) = registry.try_pop() {
                job.run();
                continue;
            }
            let guard = self.done.lock().unwrap();
            if *guard {
                return;
            }
            // Re-poll the queue periodically: a job may be injected between
            // the `try_pop` above and this wait.
            let (guard, _timeout) = self.cond.wait_timeout(guard, HELP_POLL_INTERVAL).unwrap();
            if *guard {
                return;
            }
        }
    }

    /// Block until the latch is set without helping (used by threads that do
    /// not belong to the pool the job runs on).
    pub(crate) fn wait(&self) {
        let mut guard = self.done.lock().unwrap();
        while !*guard {
            guard = self.cond.wait(guard).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Registry (the pool proper)
// ---------------------------------------------------------------------------

/// Shared state of one thread pool: the injector queue and worker handles.
pub(crate) struct Registry {
    num_threads: usize,
    queue: Mutex<VecDeque<Job>>,
    job_available: Condvar,
    terminate: AtomicBool,
}

impl Registry {
    /// Create a registry and spawn its workers; returns the worker handles
    /// so owned pools can join them on drop.
    fn start(num_threads: usize) -> (Arc<Registry>, Vec<thread::JoinHandle<()>>) {
        let registry = Arc::new(Registry {
            num_threads,
            queue: Mutex::new(VecDeque::new()),
            job_available: Condvar::new(),
            terminate: AtomicBool::new(false),
        });
        let handles = (0..num_threads)
            .map(|i| {
                let registry = Arc::clone(&registry);
                thread::Builder::new()
                    .name(format!("rayon-worker-{i}"))
                    .spawn(move || worker_loop(&registry))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        (registry, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Push a job and wake one worker.
    pub(crate) fn inject(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.job_available.notify_one();
    }

    /// Pop a job if one is immediately available.
    pub(crate) fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }

    fn terminate(&self) {
        self.terminate.store(true, Ordering::SeqCst);
        self.job_available.notify_all();
    }
}

/// Body of every worker thread: record the home registry in TLS, then pop
/// and run jobs until termination.
fn worker_loop(registry: &Arc<Registry>) {
    CURRENT_REGISTRY.with(|current| *current.borrow_mut() = Some(Arc::clone(registry)));
    loop {
        let job = {
            let mut queue = registry.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if registry.terminate.load(Ordering::SeqCst) {
                    break None;
                }
                queue = registry.job_available.wait(queue).unwrap();
            }
        };
        match job {
            Some(job) => job.run(),
            None => return,
        }
    }
}

thread_local! {
    /// The registry the current thread belongs to (workers only; other
    /// threads fall back to the global pool).
    static CURRENT_REGISTRY: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// The pool the current thread should submit work to: its home pool if it is
/// a worker, the global pool otherwise.
pub(crate) fn current_registry() -> Arc<Registry> {
    CURRENT_REGISTRY
        .with(|current| current.borrow().clone())
        .unwrap_or_else(|| Arc::clone(global_registry()))
}

static GLOBAL_REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();

fn global_registry() -> &'static Arc<Registry> {
    GLOBAL_REGISTRY.get_or_init(|| {
        let threads = num_threads_from_env(std::env::var("RAYON_NUM_THREADS").ok())
            .unwrap_or_else(default_num_threads);
        Registry::start(threads).0
    })
}

/// Parse `RAYON_NUM_THREADS`: positive integers are honoured, everything
/// else (unset, zero, garbage) selects the automatic default.
fn num_threads_from_env(value: Option<String>) -> Option<usize> {
    value.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

fn default_num_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The number of threads in the current thread's pool (the global pool for
/// threads that are not pool workers).
pub fn current_num_threads() -> usize {
    current_registry().num_threads()
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Run two closures, potentially in parallel, and return both results.
///
/// `a` runs on the calling thread; `b` is offered to the pool and may be
/// executed by any worker (or by the caller itself while it waits).  If
/// either closure panics, the panic is re-thrown here after *both* closures
/// have finished, so borrowed data stays valid for the full call.  On a
/// one-thread pool both closures simply run sequentially on the caller.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = current_registry();
    if registry.num_threads() <= 1 {
        return (a(), b());
    }
    let b_job = StackJob::new(b);
    registry.inject(Job::Stack(unsafe { b_job.as_job_ref() }));
    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    // `b` may borrow from this frame, so wait for it even if `a` panicked.
    b_job.latch.wait_while_helping(&registry);
    match ra {
        Ok(ra) => (ra, b_job.into_result()),
        Err(payload) => {
            // Drop b's result (it may itself hold a panic payload).
            let _ = panic::catch_unwind(AssertUnwindSafe(|| b_job.into_result()));
            panic::resume_unwind(payload);
        }
    }
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder
// ---------------------------------------------------------------------------

/// Error returned when a [`ThreadPoolBuilder`] cannot produce a pool.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: &'static str,
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`]s, mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (thread count from
    /// `RAYON_NUM_THREADS`, falling back to the host parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads; `0` selects the automatic default.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = if num_threads == 0 { None } else { Some(num_threads) };
        self
    }

    fn resolved_num_threads(&self) -> usize {
        self.num_threads
            .or_else(|| num_threads_from_env(std::env::var("RAYON_NUM_THREADS").ok()))
            .unwrap_or_else(default_num_threads)
    }

    /// Build an owned pool whose workers are joined when the pool is
    /// dropped.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let (registry, workers) = Registry::start(self.resolved_num_threads());
        Ok(ThreadPool { registry, workers })
    }

    /// Install this configuration as the global pool.  Fails if the global
    /// pool was already initialized (lazily or explicitly).
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = self.resolved_num_threads();
        let mut fresh = false;
        GLOBAL_REGISTRY.get_or_init(|| {
            fresh = true;
            Registry::start(threads).0
        });
        if fresh {
            Ok(())
        } else {
            Err(ThreadPoolBuildError { msg: "the global thread pool has already been initialized" })
        }
    }
}

/// An owned thread pool, independent of the global one.
///
/// Code run through [`ThreadPool::install`] — including every nested
/// `par_iter`/`join`/`scope` call it makes — executes on this pool's
/// workers.
pub struct ThreadPool {
    registry: Arc<Registry>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// The number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Execute `op` on a worker of this pool and return its result.  Panics
    /// from `op` are re-thrown on the caller.  Calling `install` from a
    /// thread that already belongs to this pool runs `op` directly.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let already_inside = CURRENT_REGISTRY.with(|current| {
            current.borrow().as_ref().is_some_and(|r| Arc::ptr_eq(r, &self.registry))
        });
        if already_inside {
            return op();
        }
        let job = StackJob::new(op);
        self.registry.inject(Job::Stack(unsafe { job.as_job_ref() }));
        // The caller is foreign to this pool, so it blocks without helping.
        job.latch.wait();
        job.into_result()
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.registry.num_threads()).finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_accepts_positive_integers_only() {
        assert_eq!(num_threads_from_env(Some("4".to_string())), Some(4));
        assert_eq!(num_threads_from_env(Some(" 2 ".to_string())), Some(2));
        assert_eq!(num_threads_from_env(Some("0".to_string())), None);
        assert_eq!(num_threads_from_env(Some("-3".to_string())), None);
        assert_eq!(num_threads_from_env(Some("lots".to_string())), None);
        assert_eq!(num_threads_from_env(None), None);
    }

    #[test]
    fn builder_zero_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn install_runs_on_a_pool_worker() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caller = thread::current().id();
        let (worker, inside_threads) =
            pool.install(|| (thread::current().id(), current_num_threads()));
        assert_ne!(caller, worker, "install must run on a pool worker thread");
        assert_eq!(inside_threads, 2, "nested code must see the installed pool");
    }

    #[test]
    fn install_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| panic!("install boom"));
        }));
        assert!(result.is_err());
        // The pool survives the panic and stays usable.
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(|| 1 + 1, || 2 + 2));
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn nested_join_computes_correctly() {
        // A parallel recursive sum over 0..256 exercises nested joins and
        // the help-while-waiting path on a small pool.
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 8 {
                range.sum()
            } else {
                let mid = range.start + len / 2;
                let (a, b) = join(|| sum(range.start..mid), || sum(mid..range.end));
                a + b
            }
        }
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(|| sum(0..256)), (0..256).sum());
    }

    #[test]
    fn join_propagates_panic_from_either_side() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        for side in 0..2 {
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                pool.install(|| {
                    join(
                        || {
                            if side == 0 {
                                panic!("left boom")
                            }
                        },
                        || {
                            if side == 1 {
                                panic!("right boom")
                            }
                        },
                    )
                });
            }));
            assert!(result.is_err(), "panic on side {side} must propagate");
        }
    }

    #[test]
    fn one_thread_pool_runs_join_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let (worker, (ta, tb)) = pool.install(|| {
            let worker = thread::current().id();
            let pair = join(|| thread::current().id(), || thread::current().id());
            (worker, pair)
        });
        // With a single thread, both closures run on the installed worker.
        assert_eq!(worker, ta);
        assert_eq!(worker, tb);
    }

    #[test]
    fn two_workers_really_run_concurrently() {
        // Both sides of the join rendezvous at a barrier, which can only
        // succeed if two distinct OS threads execute them simultaneously.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let barrier = std::sync::Barrier::new(2);
        let (ta, tb) = pool.install(|| {
            join(
                || {
                    barrier.wait();
                    thread::current().id()
                },
                || {
                    barrier.wait();
                    thread::current().id()
                },
            )
        });
        assert_ne!(ta, tb, "barrier-synchronized join sides must use distinct threads");
    }
}
