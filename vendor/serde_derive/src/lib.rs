//! Offline vendored stub of `serde_derive`.
//!
//! The build container has no network access, so `syn`/`quote` are
//! unavailable; this crate parses the derive input directly from
//! [`proc_macro::TokenTree`]s. It supports the shapes this workspace
//! actually uses: named structs, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants, all optionally generic.
//!
//! `#[derive(Serialize)]` generates a field-by-field
//! `impl serde::Serialize` producing the vendored `serde::Value` tree with
//! real serde's externally-tagged layout. `#[derive(Deserialize)]` emits the
//! stub's marker impl.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item);
    let impl_block = format!(
        "impl{generics} ::serde::Serialize for {name}{ty_args} {where_clause} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        generics = item.generics_decl(),
        name = item.name,
        ty_args = item.generics_args(),
        where_clause = item.where_clause("::serde::Serialize"),
        body = body,
    );
    impl_block.parse().expect("serde_derive stub generated invalid Serialize impl")
}

/// Derive the vendored `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let impl_block = format!(
        "impl{generics} ::serde::Deserialize for {name}{ty_args} {where_clause} {{}}",
        generics = item.generics_decl(),
        name = item.name,
        ty_args = item.generics_args(),
        where_clause = item.where_clause("::serde::Deserialize"),
    );
    impl_block.parse().expect("serde_derive stub generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------------

struct Field {
    /// `Some(name)` for named fields, `None` for tuple positions.
    name: Option<String>,
    /// The field's type, as source text.
    ty: String,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    /// Raw generic tokens between `<` and `>`, e.g. `K: Ord + Clone`.
    generics: String,
    /// Just the parameter names, e.g. `K`.
    generic_names: Vec<String>,
    /// Raw predicates from an explicit `where` clause, if any.
    where_predicates: String,
    shape: Shape,
}

impl Item {
    fn generics_decl(&self) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics)
        }
    }

    fn generics_args(&self) -> String {
        if self.generic_names.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generic_names.join(", "))
        }
    }

    /// Build a `where` clause: the item's own predicates plus, for generic
    /// items, a `FieldTy: {bound}` predicate per field (the synstructure
    /// trick — avoids re-parsing the declared bounds).
    fn where_clause(&self, bound: &str) -> String {
        let mut preds: Vec<String> = Vec::new();
        if !self.where_predicates.is_empty() {
            preds.push(self.where_predicates.clone());
        }
        if !self.generic_names.is_empty() {
            let mut seen = std::collections::BTreeSet::new();
            for f in self.all_fields() {
                if seen.insert(f.ty.clone()) {
                    preds.push(format!("{}: {}", f.ty, bound));
                }
            }
        }
        if preds.is_empty() {
            String::new()
        } else {
            format!("where {}", preds.join(", "))
        }
    }

    fn all_fields(&self) -> Vec<&Field> {
        match &self.shape {
            Shape::NamedStruct(fs) | Shape::TupleStruct(fs) => fs.iter().collect(),
            Shape::UnitStruct => Vec::new(),
            Shape::Enum(vs) => vs
                .iter()
                .flat_map(|v| match &v.shape {
                    VariantShape::Unit => &[] as &[Field],
                    VariantShape::Tuple(fs) | VariantShape::Named(fs) => fs.as_slice(),
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn object_literal(pairs: &[(String, String)]) -> String {
    let entries: Vec<String> =
        pairs.iter().map(|(k, v)| format!("({:?}.to_string(), {v})", k)).collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn serialize_body(item: &Item) -> String {
    match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .map(|f| {
                    let name = f.name.as_ref().expect("named field");
                    (name.clone(), format!("::serde::Serialize::to_value(&self.{name})"))
                })
                .collect();
            object_literal(&pairs)
        }
        Shape::TupleStruct(fields) if fields.len() == 1 => {
            // Newtype structs serialize transparently, like real serde.
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::TupleStruct(fields) => {
            let items: Vec<String> = (0..fields.len())
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let path = format!("{}::{}", item.name, vname);
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{path} => ::serde::Value::String({vname:?}.to_string()),"
                        ),
                        VariantShape::Tuple(fields) => {
                            let binders: Vec<String> =
                                (0..fields.len()).map(|i| format!("f{i}")).collect();
                            let inner = if fields.len() == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{path}({binds}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),",
                                binds = binders.join(", "),
                            )
                        }
                        VariantShape::Named(fields) => {
                            let names: Vec<String> = fields
                                .iter()
                                .map(|f| f.name.clone().expect("named field"))
                                .collect();
                            let pairs: Vec<(String, String)> = names
                                .iter()
                                .map(|n| (n.clone(), format!("::serde::Serialize::to_value({n})")))
                                .collect();
                            let inner = object_literal(&pairs);
                            format!(
                                "{path} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),",
                                binds = names.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    }
}

// ---------------------------------------------------------------------------
// TokenTree parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes_and_visibility(&tokens, &mut pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, found {other}"),
    };
    pos += 1;

    let name = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, found {other}"),
    };
    pos += 1;

    let (generics, generic_names) = parse_generics(&tokens, &mut pos);
    let where_predicates = parse_where(&tokens, &mut pos);

    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(parse_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };

    Item { name, generics, generic_names, where_predicates, shape }
}

/// Advance past `#[...]` attributes (including doc comments) and any
/// `pub` / `pub(...)` visibility.
fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parse `<...>` generics if present. Returns (raw declaration text,
/// parameter names).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> (String, Vec<String>) {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return (String::new(), Vec::new()),
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut inner: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        let tok = tokens.get(*pos).expect("serde_derive stub: unterminated generics").clone();
        *pos += 1;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        inner.push(tok);
    }
    let decl = tokens_to_string(&inner);
    let names = split_top_level(&inner)
        .into_iter()
        .filter_map(|chunk| generic_param_name(&chunk))
        .collect();
    (decl, names)
}

/// First identifier of a generic-parameter chunk: the parameter name (after
/// `const` for const generics, with the leading quote for lifetimes).
fn generic_param_name(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    if let Some(TokenTree::Punct(p)) = chunk.first() {
        if p.as_char() == '\'' {
            if let Some(TokenTree::Ident(id)) = chunk.get(1) {
                return Some(format!("'{id}"));
            }
        }
    }
    if let Some(TokenTree::Ident(id)) = chunk.first() {
        if id.to_string() == "const" {
            i = 1;
        }
    }
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Parse an explicit `where` clause (predicates up to the item body).
fn parse_where(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) if id.to_string() == "where" => {}
        _ => return String::new(),
    }
    *pos += 1;
    let mut preds: Vec<TokenTree> = Vec::new();
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Group(g) = tok {
            if g.delimiter() == Delimiter::Brace {
                break;
            }
        }
        if let TokenTree::Punct(p) = tok {
            if p.as_char() == ';' {
                break;
            }
        }
        preds.push(tok.clone());
        *pos += 1;
    }
    tokens_to_string(&preds)
}

/// Split a token list on commas that sit outside any `<...>` nesting
/// (grouped delimiters are already opaque `TokenTree::Group`s).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle = 0usize;
    for tok in tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&tokens)
        .into_iter()
        .filter_map(|chunk| {
            let mut pos = 0;
            skip_attributes_and_visibility(&chunk, &mut pos);
            let name = match chunk.get(pos) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            pos += 1;
            match chunk.get(pos) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
                _ => return None,
            }
            Some(Field { name: Some(name), ty: tokens_to_string(&chunk[pos..]) })
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&tokens)
        .into_iter()
        .map(|chunk| {
            let mut pos = 0;
            skip_attributes_and_visibility(&chunk, &mut pos);
            Field { name: None, ty: tokens_to_string(&chunk[pos..]) }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    split_top_level(&tokens)
        .into_iter()
        .filter_map(|chunk| {
            let mut pos = 0;
            skip_attributes_and_visibility(&chunk, &mut pos);
            let name = match chunk.get(pos) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            pos += 1;
            let shape = match chunk.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(parse_tuple_fields(g.stream()))
                }
                // `Variant = 3` discriminants and plain unit variants.
                _ => VariantShape::Unit,
            };
            Some(Variant { name, shape })
        })
        .collect()
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let stream: TokenStream = tokens.iter().cloned().collect();
    stream.to_string()
}
