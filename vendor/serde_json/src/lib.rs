//! Offline vendored stub of the `serde_json` API surface this workspace
//! uses: pretty (and compact) printing of the vendored [`serde::Value`]
//! tree produced by `#[derive(Serialize)]`.

#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Error type for JSON serialization (the stub serializer is total, so this
/// is never produced; it exists so call sites can keep matching `Result`).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut printer = Printer { out: String::new(), pretty: true };
    printer.write_value(&value.to_value(), 0);
    Ok(printer.out)
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut printer = Printer { out: String::new(), pretty: false };
    printer.write_value(&value.to_value(), 0);
    Ok(printer.out)
}

struct Printer {
    out: String,
    pretty: bool,
}

impl Printer {
    fn write_value(&mut self, v: &Value, indent: usize) {
        match v {
            Value::Null => self.out.push_str("null"),
            Value::Bool(b) => self.out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => self.out.push_str(&n.to_string()),
            Value::Int(n) => self.out.push_str(&n.to_string()),
            Value::Float(x) => self.write_float(*x),
            Value::String(s) => self.write_escaped(s),
            Value::Array(items) => {
                self.write_seq('[', ']', items.len(), indent, |p, i, ind| {
                    p.write_value(&items[i], ind);
                });
            }
            Value::Object(entries) => {
                self.write_seq('{', '}', entries.len(), indent, |p, i, ind| {
                    let (k, val) = &entries[i];
                    p.write_escaped(k);
                    p.out.push(':');
                    if p.pretty {
                        p.out.push(' ');
                    }
                    p.write_value(val, ind);
                });
            }
        }
    }

    fn write_seq(
        &mut self,
        open: char,
        close: char,
        len: usize,
        indent: usize,
        mut write_item: impl FnMut(&mut Self, usize, usize),
    ) {
        self.out.push(open);
        if len == 0 {
            self.out.push(close);
            return;
        }
        for i in 0..len {
            if i > 0 {
                self.out.push(',');
            }
            self.newline_indent(indent + 1);
            write_item(self, i, indent + 1);
        }
        self.newline_indent(indent);
        self.out.push(close);
    }

    fn newline_indent(&mut self, indent: usize) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..indent {
                self.out.push_str("  ");
            }
        }
    }

    fn write_float(&mut self, x: f64) {
        if x.is_finite() {
            let s = x.to_string();
            self.out.push_str(&s);
            // Keep floats recognizably floats, as serde_json does.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                self.out.push_str(".0");
            }
        } else {
            // Real serde_json errors on non-finite floats; emitting null
            // keeps experiment dumps usable instead of aborting a long run.
            self.out.push_str("null");
        }
    }

    fn write_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

#[cfg(test)]
mod tests {
    use super::{to_string, to_string_pretty, Value};

    #[test]
    fn compact_output_matches_expected_json() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("hss".to_string())),
            ("p".to_string(), Value::UInt(64)),
            ("eps".to_string(), Value::Float(0.5)),
            ("tags".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"name":"hss","p":64,"eps":0.5,"tags":[true,null]}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![("a".to_string(), Value::Array(vec![Value::UInt(1)]))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_stay_floats_and_strings_escape() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn empty_containers_render_closed() {
        assert_eq!(to_string_pretty(&Value::Array(vec![])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&Value::Object(vec![])).unwrap(), "{}");
    }
}
