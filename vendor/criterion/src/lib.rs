//! Offline vendored stub of the `criterion` benchmark-harness API surface
//! this workspace uses.
//!
//! The build container has no network access, so this stub implements a
//! compact wall-clock harness behind the same API: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `finish`), [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. There is no
//! statistical analysis or HTML report — each benchmark prints
//! `group/function: median iteration time (throughput)` to stdout.
//!
//! Respects `HSS_BENCH_QUICK=1` to cut sample counts for CI smoke runs.

#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier, e.g. `sort/hss`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// Create an id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Median per-iteration time of the last [`Bencher::iter`] run.
    last_median: Duration,
    samples: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording per-sample wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate the group with a throughput, reported next to timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark: calls `f` with a [`Bencher`] and prints the
    /// median iteration time.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if std::env::var("HSS_BENCH_QUICK").is_ok() { 2 } else { self.sample_size };
        let mut b = Bencher { last_median: Duration::ZERO, samples };
        f(&mut b);
        let median = b.last_median;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(" ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(" ({:.3} MiB/s)", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!("{}/{}: median {:?}{}", self.name, id, median, rate);
        self
    }

    /// Finish the group (a no-op in the stub; real criterion renders
    /// summaries here).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a new benchmark group with the given name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }
}

/// Bundle benchmark functions into a group runner (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` that runs the given groups, ignoring harness CLI args
/// (`--bench`, filters) that cargo passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes `--bench`/filter args; the stub runs everything.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3).throughput(Throughput::Elements(100));
        group.bench_function(BenchmarkId::new("spin", 1), |b| {
            b.iter(|| (0..1000u64).map(black_box).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_both_parts() {
        assert_eq!(BenchmarkId::new("sort", "hss").to_string(), "sort/hss");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
