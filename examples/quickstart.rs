//! Quickstart: sort a distributed dataset with Histogram Sort with Sampling
//! and inspect the execution report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hss_repro::prelude::*;

fn main() {
    // A simulated cluster: 64 processor cores, 16 per shared-memory node,
    // with a Blue Gene/Q-flavoured cost model.
    let ranks = 64;
    let mut machine = Machine::new(Topology::new(ranks, 16), CostModel::bluegene_like());

    // Each core holds 100,000 uniformly random 64-bit keys.
    let input = KeyDistribution::Uniform.generate_per_rank(ranks, 100_000, 2019);
    let total_keys: usize = input.iter().map(|v| v.len()).sum();
    println!("sorting {total_keys} keys across {ranks} simulated cores...");

    // HSS with the paper's cluster configuration: 2% load-balance threshold
    // across nodes, constant oversampling of 5 keys per processor per
    // histogramming round, node-level partitioning and message combining.
    let sorter = HssSorter::new(HssConfig::paper_cluster());
    let outcome = sorter.sort(&mut machine, input);

    let report = &outcome.report;
    println!("\nalgorithm            : {}", report.algorithm);
    println!(
        "load imbalance       : {:.4} (bound 1 + eps = 1.02 across nodes)",
        report.imbalance()
    );
    if let Some(sp) = &report.splitters {
        println!("histogramming rounds : {}", sp.rounds_executed());
        println!(
            "total sample size    : {} keys (vs {} keys of input)",
            sp.total_sample_size, report.total_keys
        );
    }
    println!("\nper-phase breakdown (simulated seconds):");
    for (group, seconds) in report.metrics.figure_6_1_breakdown() {
        println!("  {group:<15} {seconds:.6}");
    }
    println!("\nfull metrics:\n{}", report.metrics);

    // The output really is globally sorted.
    let mut last = 0u64;
    for (rank, local) in outcome.data.iter().enumerate() {
        for &k in local {
            assert!(k >= last, "rank {rank} broke the global order");
            last = k;
        }
    }
    println!("verified: output is globally sorted and balanced.");
}
