//! The epoch-based sorting service: ingest → seal → query, warm-starting
//! each epoch's splitter determination from the previous epoch's probes.
//!
//! A drifting ingest stream is sealed over several epochs twice — once with
//! warm starts on and once with them forced off — and the per-epoch
//! histogramming rounds, sample sizes and simulated makespans are compared.
//! Between epochs the service answers rank / percentile / range-count
//! queries from its representative samples (Theorem 3.4.1), without
//! touching the sorted keyspace.
//!
//! ```text
//! cargo run --release --example epoch_sort_service
//! ```

use hss_repro::prelude::*;
use hss_repro::sim::Phase;

const RANKS: usize = 32;
const KEYS_PER_RANK_PER_EPOCH: usize = 3_000;
const EPOCHS: usize = 4;
const DRIFT: f64 = 0.05;

fn build_service(warm: bool) -> SortService<u64> {
    let hss = HssConfig::default()
        .with_epsilon(0.02)
        .with_schedule(RoundSchedule::ConstantOversampling { oversampling: 4.0, max_rounds: 32 })
        .with_seed(2019);
    let config = ServiceConfig::new(hss).expect("valid config");
    let config = if warm { config } else { config.without_warm_start() };
    SortService::new(RANKS, config)
}

fn main() {
    let mut warm = build_service(true);
    let mut cold = build_service(false);

    println!(
        "Sealing {EPOCHS} epochs of {KEYS_PER_RANK_PER_EPOCH} keys/rank on p = {RANKS} \
         (window drift {DRIFT}/epoch)\n"
    );
    println!(
        "{:>5}  {:>10}  {:>22}  {:>24}  {:>8}",
        "epoch", "keys", "rounds (warm/cold)", "sample keys (warm/cold)", "carried"
    );

    let mut warm_workload = DriftingWorkload::new(RANKS, KEYS_PER_RANK_PER_EPOCH, DRIFT, 2019);
    let mut cold_workload = DriftingWorkload::new(RANKS, KEYS_PER_RANK_PER_EPOCH, DRIFT, 2019);
    for epoch in 0..EPOCHS {
        warm.ingest_per_rank(warm_workload.next_batch());
        cold.ingest_per_rank(cold_workload.next_batch());
        let w = warm.seal_epoch().clone();
        let c = cold.seal_epoch().clone();
        println!(
            "{:>5}  {:>10}  {:>11} / {:>8}  {:>13} / {:>8}  {:>8}",
            epoch,
            w.total_keys,
            w.splitter_rounds,
            c.splitter_rounds,
            w.splitters.total_sample_size,
            c.splitters.total_sample_size,
            w.carried_probes,
        );
    }

    let saved_rounds: usize = cold.history().iter().map(|e| e.splitter_rounds).sum::<usize>()
        - warm.history().iter().map(|e| e.splitter_rounds).sum::<usize>();
    let warm_time: f64 = warm.history().iter().map(|e| e.makespan_seconds).sum();
    let cold_time: f64 = cold.history().iter().map(|e| e.makespan_seconds).sum();
    println!(
        "\nwarm starts saved {saved_rounds} histogramming rounds; \
         summed makespan {warm_time:.4}s vs {cold_time:.4}s cold ({:.2}x)",
        cold_time / warm_time
    );

    // Between-epoch queries, served from the samples without re-sorting.
    let n = warm.total_keys() as f64;
    let median = warm.percentile(0.5);
    let rank = warm.rank(median);
    let p90 = warm.percentile(0.9);
    let decile = warm.range_count(median, p90);
    let query_seconds = warm.machine().metrics().phase(Phase::Query).simulated_seconds;
    println!("\nqueries against the sealed keyspace ({} keys):", n as u64);
    println!("  median estimate     : key {median} (rank {rank:.0}, ideal {:.0})", n / 2.0);
    println!("  p50..p90 range count: {decile:.0} keys (ideal {:.0})", 0.4 * n);
    println!("  simulated query time: {query_seconds:.6}s on Phase::Query");
    println!("  allowance eps*N/p   : {:.0} ranks (Theorem 3.4.1)", 0.02 * n / RANKS as f64);
}
