//! ChaNGa-style N-body workload: particles clustered in halos are re-sorted
//! by their space-filling-curve key at the start of every simulation
//! iteration (the paper's motivating application, §1 and §6.3).
//!
//! Each iteration the particles drift a little, so the key distribution
//! changes slightly; the sorter runs again and we compare HSS against the
//! classic (unsampled) Histogram sort on the same data — the Figure 6.2
//! comparison in miniature.
//!
//! ```text
//! cargo run --release --example changa_nbody
//! ```

use hss_baselines::HistogramSortConfig;
use hss_repro::prelude::*;

const RANKS: usize = 32;
const PARTICLES_PER_RANK: usize = 20_000;
const ITERATIONS: usize = 3;

fn main() {
    let dataset = ChangaDataset::dwarf_like(7);
    println!(
        "dataset {} : {} clusters + {:.0}% background, {} particles on {} ranks",
        dataset.name,
        dataset.clusters.len(),
        dataset.background_fraction * 100.0,
        RANKS * PARTICLES_PER_RANK,
        RANKS
    );

    // Initial particle keys (Morton / Z-order index of each position).
    let mut keys = dataset.generate_keys_per_rank(RANKS, PARTICLES_PER_RANK, 42);

    for iteration in 0..ITERATIONS {
        // HSS (with duplicate tagging: Morton keys of particles in a dense
        // halo core can collide).
        let mut hss_machine = Machine::flat(RANKS);
        let sorter = HssSorter::new(
            HssConfig { epsilon: 0.05, ..HssConfig::default() }
                .with_duplicate_tagging()
                .with_seed(iteration as u64),
        );
        let hss = sorter.sort(&mut hss_machine, keys.clone());

        // Classic histogram sort ("Old" in Figure 6.2), through the trait.
        let mut old_machine = Machine::flat(RANKS);
        let old = HistogramSortConfig::new(0.05, RANKS)
            .run(&mut old_machine, SortRequest::new(keys.clone()))
            .expect("histogram sort")
            .report;

        let hss_rounds = hss.report.splitters.as_ref().map(|s| s.rounds_executed()).unwrap_or(0);
        let old_rounds = old.splitters.as_ref().map(|s| s.rounds_executed()).unwrap_or(0);
        println!(
            "\niteration {iteration}: \
             HSS {:.4}s simulated ({hss_rounds} rounds, imbalance {:.3}) | \
             old histogram sort {:.4}s ({old_rounds} rounds, imbalance {:.3})",
            hss.report.simulated_seconds(),
            hss.report.imbalance(),
            old.simulated_seconds(),
            old.imbalance(),
        );

        // "Move" the particles: perturb each key slightly to mimic drift
        // between simulation steps, then feed the sorted data back in.
        keys = hss
            .data
            .into_iter()
            .map(|local| local.into_iter().map(|k| k.wrapping_add((k % 1024) * 7)).collect())
            .collect();
    }
    println!("\ndone: HSS kept the per-iteration splitter determination cheap on clustered keys.");
}
