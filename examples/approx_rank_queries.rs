//! Approximate histogramming as a general rank-query oracle (§3.4).
//!
//! Every processor keeps a small representative sample of its local data;
//! global rank (percentile) queries are answered from the samples alone,
//! within `εN/p` of the truth w.h.p. (Theorem 3.4.1).  This example builds
//! the oracle over a skewed dataset, queries a few percentiles and compares
//! the estimates with exact ranks.
//!
//! ```text
//! cargo run --release --example approx_rank_queries
//! ```

use hss_core::{ApproxHistogrammer, LocalSortAlgo};
use hss_partition::exact_rank;
use hss_repro::prelude::*;

const RANKS: usize = 64;
const KEYS_PER_RANK: usize = 100_000;
const EPSILON: f64 = 0.05;

fn main() {
    // Skewed data: exponential keys concentrated near zero.
    let mut data = KeyDistribution::Exponential { scale_frac: 0.01 }.generate_per_rank(
        RANKS,
        KEYS_PER_RANK,
        7,
    );
    for v in &mut data {
        v.sort_unstable();
    }
    let total = (RANKS * KEYS_PER_RANK) as u64;

    let mut machine = Machine::flat(RANKS);
    let sample_size = ApproxHistogrammer::<u64>::prescribed_sample_size(RANKS, EPSILON);
    let oracle =
        ApproxHistogrammer::build(&mut machine, &data, sample_size, 1, LocalSortAlgo::default());
    println!(
        "representative sample: {} keys/rank ({} total) for {} input keys ({:.4}% of the data)",
        sample_size,
        oracle.total_sample_size(),
        total,
        100.0 * oracle.total_sample_size() as f64 / total as f64
    );

    // Query the keys that the exact 10th..90th percentiles fall on.
    let sorted = hss_partition::global_sorted(&data);
    let queries: Vec<u64> = (1..10).map(|i| sorted[(total as usize) * i / 10]).collect();
    let estimates = oracle.estimated_global_ranks(&mut machine, &queries);

    println!(
        "\n{:>4}  {:>14}  {:>14}  {:>12}  {:>10}",
        "pct", "true rank", "estimated", "abs error", "eps*N/p"
    );
    let allowed = EPSILON * total as f64 / RANKS as f64;
    for (i, (q, est)) in queries.iter().zip(estimates.iter()).enumerate() {
        let truth = exact_rank(&data, *q) as f64;
        println!(
            "{:>3}%  {:>14.0}  {:>14.0}  {:>12.0}  {:>10.0}",
            (i + 1) * 10,
            truth,
            est,
            (est - truth).abs(),
            allowed
        );
    }
    println!(
        "\nTheorem 3.4.1: with {} samples per rank the error stays within eps*N/p = {:.0} ranks w.h.p.",
        sample_size, allowed
    );
}
