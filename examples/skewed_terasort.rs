//! A TeraSort-style bulk sort on adversarial inputs: heavy skew and heavy
//! duplication.  Shows why splitter quality matters — the same data is
//! sorted with HSS (with duplicate tagging), sample sort with regular
//! sampling, and radix partitioning, and the resulting load balance is
//! compared.
//!
//! ```text
//! cargo run --release --example skewed_terasort
//! ```

use hss_baselines::{RadixConfig, SampleSortConfig};
use hss_repro::prelude::*;

const RANKS: usize = 32;
const KEYS_PER_RANK: usize = 50_000;
const EPSILON: f64 = 0.05;

fn main() {
    let workloads = vec![
        ("exponential skew", KeyDistribution::Exponential { scale_frac: 1e-4 }),
        ("power-law skew", KeyDistribution::PowerLaw { gamma: 6.0 }),
        ("64 distinct values", KeyDistribution::FewDistinct { distinct: 64 }),
    ];

    println!(
        "{:<22} {:<26} {:>12} {:>14} {:>12}",
        "workload", "algorithm", "imbalance", "sim seconds", "sample keys"
    );
    for (name, dist) in workloads {
        let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, 99);

        // HSS with duplicate tagging.
        let mut m = Machine::flat(RANKS);
        let hss = HssSorter::new(
            HssConfig { epsilon: EPSILON, ..HssConfig::default() }.with_duplicate_tagging(),
        )
        .sort(&mut m, input.clone());
        print_row(
            name,
            "HSS (tagged)",
            hss.report.imbalance(),
            hss.report.simulated_seconds(),
            hss.report.splitters.as_ref().map(|s| s.total_sample_size).unwrap_or(0),
        );

        // Sample sort with regular sampling, through the unified trait.
        let mut m = Machine::flat(RANKS);
        let ss = SampleSortConfig::regular(EPSILON)
            .run(&mut m, SortRequest::new(input.clone()))
            .expect("sample sort")
            .report;
        print_row(
            name,
            "sample sort (regular)",
            ss.imbalance(),
            ss.simulated_seconds(),
            ss.splitters.as_ref().map(|s| s.total_sample_size).unwrap_or(0),
        );

        // Radix partitioning (no comparison-based splitters).
        let mut m = Machine::flat(RANKS);
        let rx = RadixConfig::recommended(RANKS)
            .run(&mut m, SortRequest::new(input))
            .expect("radix partition")
            .report;
        print_row(name, "radix partition", rx.imbalance(), rx.simulated_seconds(), 0);
    }

    println!(
        "\nHSS achieves the requested (1 + {EPSILON}) balance with a tiny sample even under skew \
         and duplicates; radix partitioning collapses under skew, and regular sampling needs a \
         sample that grows as p^2/eps."
    );
}

fn print_row(workload: &str, algo: &str, imbalance: f64, seconds: f64, sample: usize) {
    println!("{workload:<22} {algo:<26} {imbalance:>12.3} {seconds:>14.6} {sample:>12}");
}
