//! Overlapped vs BSP execution of one skewed HSS sort (§4 of the paper).
//!
//! Runs the identical workload twice — once under strict bulk-synchronous
//! accounting (`SyncModel::Bsp`, a barrier after every superstep) and once
//! under overlapped execution (`SyncModel::Overlapped`, splitter
//! determination pipelined with a staged, asynchronous all-to-allv) — and
//! prints the per-phase charges, both makespans, and where the overlap
//! saving comes from (the exchange stages that hid under histogram
//! rounds).
//!
//! ```text
//! cargo run --release --example overlap_timeline
//! ```

use hss_repro::prelude::*;

const RANKS: usize = 64;
const KEYS_PER_RANK: usize = 16_384;
const SEED: u64 = 2019;

fn main() {
    // Power-law keys: the canonical "skewed input" of the paper's
    // evaluation.  Per-rank volumes are additionally uneven, so local
    // phases really do finish at different times per rank.
    let input = KeyDistribution::PowerLaw { gamma: 4.0 }.generate_uneven_per_rank(
        RANKS,
        KEYS_PER_RANK,
        0.5,
        SEED,
    );
    let sorter =
        HssSorter::new(HssConfig { epsilon: 0.02, ..HssConfig::default() }.with_seed(SEED));

    let mut bsp = Machine::flat(RANKS);
    let bsp_out = sorter.sort(&mut bsp, input.clone());

    let mut ovl = Machine::flat(RANKS).with_sync_model(SyncModel::Overlapped).with_tracing();
    let ovl_out = sorter.sort(&mut ovl, input);

    println!("HSS on {RANKS} ranks x ~{KEYS_PER_RANK} keys/rank, power-law keys, uneven volumes\n");
    println!("== Bsp (barrier after every superstep) ==");
    println!("{}", bsp_out.report.metrics);
    println!("== Overlapped (staged exchange hides under histogram rounds) ==");
    println!("{}", ovl_out.report.metrics);

    // Per-phase comparison of the charges: the overlapped run charges a
    // little more (per-round splitter piggybacking, per-stage bucketizing)
    // yet finishes earlier, because the stages run while rounds compute.
    println!("== Per-phase charges (simulated seconds) ==");
    println!("{:<20} {:>12} {:>12}", "phase", "bsp", "overlapped");
    for phase in Phase::ALL {
        let b = bsp_out.report.metrics.phase(phase).simulated_seconds;
        let o = ovl_out.report.metrics.phase(phase).simulated_seconds;
        if b > 0.0 || o > 0.0 {
            println!("{:<20} {:>12.9} {:>12.9}", phase.name(), b, o);
        }
    }

    let stages: Vec<_> =
        ovl.trace().events().iter().filter(|e| e.label == "exchange_stage").collect();
    println!("\n== Exchange stages (asynchronous, overlapped run) ==");
    for e in &stages {
        println!(
            "  superstep {:>3}: [{:.9}, {:.9}] s, {} messages, {} words",
            e.superstep,
            e.start(),
            e.end(),
            e.messages,
            e.comm_words
        );
    }

    let b = bsp_out.report.makespan_seconds;
    let o = ovl_out.report.makespan_seconds;
    println!("\n== Makespan ==");
    println!("  bsp        : {b:.9} s");
    println!("  overlapped : {o:.9} s");
    println!("  saving     : {:.9} s ({:.1}%)", b - o, 100.0 * (b - o) / b);
    println!(
        "  rounds {}  stages {}  imbalance {:.4} (bsp {:.4})",
        ovl_out.report.splitters.as_ref().map(|s| s.rounds_executed()).unwrap_or(0),
        stages.len(),
        ovl_out.report.imbalance(),
        bsp_out.report.imbalance(),
    );
    assert!(o < b, "overlapped execution must beat Bsp on this workload");
}
