//! Sync-model differential suite: the per-rank [`Timeline`] must reproduce
//! the historical scalar accounting under `SyncModel::Bsp`, and overlapped
//! execution must only ever *reduce* the makespan.
//!
//! Three oracles, for every sorter × key distribution × exchange
//! engine/mode:
//!
//! 1. **Scalar-accumulator oracle (bitwise).**  Before per-rank timelines,
//!    the simulator kept one scalar: the sum of per-superstep
//!    max-over-ranks charges, in execution order.  That accumulator is
//!    reconstructed here by folding the traced per-superstep charges, and
//!    under `SyncModel::Bsp` the timeline's makespan must equal it **bit
//!    for bit** — a barrier after every superstep makes the clock vector
//!    collapse to exactly that scalar chain.
//! 2. **Registry neutrality (bitwise).**  The sync model must never change
//!    *what* is charged, only *when* clocks advance: running the same
//!    algorithm under Bsp and Overlapped must yield bitwise-identical
//!    `deterministic_signature()`s.  (HSS itself restructures its schedule
//!    under Overlapped, so this oracle applies to every non-HSS sorter;
//!    HSS's Bsp path is pinned by oracle 1 plus the flat/nested suite in
//!    `tests/exchange_differential.rs`.)
//! 3. **Overlap safety.**  Overlapped HSS must still produce a correct
//!    global sort, keep the load-balance guarantee, and never exceed the
//!    Bsp makespan.

use hss_repro::baselines::{
    bitonic_sort_with_engine, histogram_sort_with_engine, over_partitioning_sort_with_engine,
    radix_partition_sort_with_engine, sample_sort_with_engine, HistogramSortConfig,
    OverPartitioningConfig, RadixConfig, SampleSortConfig,
};
use hss_repro::partition::{verify_global_sort, ExchangeEngine};
use hss_repro::prelude::*;
use hss_repro::sim::SyncModel;

const RANKS: usize = 8;
const KEYS_PER_RANK: usize = 300;
const SEED: u64 = 2019;

fn distributions() -> [KeyDistribution; 3] {
    [
        KeyDistribution::Uniform,
        KeyDistribution::PowerLaw { gamma: 4.0 },
        KeyDistribution::FewDistinct { distinct: 5 },
    ]
}

/// Rank-level and node-combined machines (the latter routes splitter-based
/// exchanges through the node-combined path).
fn topologies() -> [Topology; 2] {
    [Topology::flat(RANKS), Topology::new(RANKS, 4)]
}

/// Oracle 1: under Bsp, makespan == fold of per-superstep charges, bitwise.
fn assert_bsp_matches_scalar_accumulator(label: &str, machine: &Machine) {
    let scalar: f64 = machine.trace().events().iter().fold(0.0, |acc, e| acc + e.simulated_seconds);
    assert_eq!(
        machine.simulated_time().to_bits(),
        scalar.to_bits(),
        "{label}: Bsp makespan {} != scalar accumulator {}",
        machine.simulated_time(),
        scalar
    );
    // The registry's per-phase sum is the same quantity grouped per phase;
    // f64 summation order may differ, so compare with tolerance.
    let registry = machine.metrics().total_simulated_seconds();
    assert!(
        (registry - scalar).abs() <= 1e-9 * scalar.max(1e-30),
        "{label}: registry total {registry} far from scalar {scalar}"
    );
}

/// Oracles 1 + 2 for a sorter that does not branch on the sync model.
fn assert_sync_neutral<T, F>(label: &str, topo: Topology, sorter: F)
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(&mut Machine) -> Vec<Vec<T>>,
{
    let mut bsp = Machine::new(topo, CostModel::bluegene_like()).with_tracing();
    let out_bsp = sorter(&mut bsp);
    assert_bsp_matches_scalar_accumulator(label, &bsp);

    let mut ovl = Machine::new(topo, CostModel::bluegene_like())
        .with_sync_model(SyncModel::Overlapped)
        .with_tracing();
    let out_ovl = sorter(&mut ovl);
    assert_eq!(out_bsp, out_ovl, "{label}: per-rank data diverged across sync models");
    assert_eq!(
        bsp.metrics().deterministic_signature(),
        ovl.metrics().deterministic_signature(),
        "{label}: cost signature changed with the sync model"
    );
    // Dropping barriers can only shorten the timeline, never lengthen it.
    assert!(
        ovl.simulated_time() <= bsp.simulated_time() * (1.0 + 1e-12),
        "{label}: overlapped makespan {} above bsp {}",
        ovl.simulated_time(),
        bsp.simulated_time()
    );
}

#[test]
fn hss_bsp_reproduces_scalar_accounting_for_all_engines() {
    for topo in topologies() {
        for dist in distributions() {
            for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
                let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
                let label =
                    format!("hss/{}/{:?}/{} cores", dist.name(), engine, topo.cores_per_node());
                let cfg = HssConfig::default().with_seed(SEED).with_exchange_engine(engine);
                let mut bsp = Machine::new(topo, CostModel::bluegene_like()).with_tracing();
                let out = HssSorter::new(cfg).sort(&mut bsp, input.clone());
                verify_global_sort(&input, &out.data).unwrap();
                assert_bsp_matches_scalar_accumulator(&label, &bsp);
                assert_eq!(out.report.sync_model, "bsp");
            }
        }
    }
}

#[test]
fn hss_node_level_bsp_reproduces_scalar_accounting() {
    let topo = Topology::new(16, 4);
    for dist in distributions() {
        let input = dist.generate_per_rank(16, KEYS_PER_RANK, SEED);
        let cfg = HssConfig::paper_cluster().with_seed(SEED);
        let mut bsp = Machine::new(topo, CostModel::bluegene_like()).with_tracing();
        let _ = HssSorter::new(cfg).sort(&mut bsp, input);
        assert_bsp_matches_scalar_accumulator(&format!("hss-node-level/{}", dist.name()), &bsp);
    }
}

#[test]
fn sample_sort_is_sync_model_neutral() {
    for topo in topologies() {
        for dist in distributions() {
            let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
            for (name, cfg) in [
                ("regular", SampleSortConfig::regular(0.2)),
                ("random", SampleSortConfig::random(0.2)),
            ] {
                let label = format!("sample-sort-{name}/{}", dist.name());
                assert_sync_neutral(&label, topo, |machine| {
                    sample_sort_with_engine(machine, &cfg, input.clone(), ExchangeEngine::Flat).0
                });
            }
        }
    }
}

#[test]
fn histogram_over_partitioning_radix_bitonic_are_sync_model_neutral() {
    for topo in topologies() {
        for dist in distributions() {
            let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
            let hist_cfg = HistogramSortConfig::new(0.1, RANKS);
            assert_sync_neutral(&format!("histogram/{}", dist.name()), topo, |machine| {
                histogram_sort_with_engine(machine, &hist_cfg, input.clone(), ExchangeEngine::Flat)
                    .0
            });
            let over_cfg = OverPartitioningConfig::recommended(RANKS);
            assert_sync_neutral(&format!("overpartition/{}", dist.name()), topo, |machine| {
                over_partitioning_sort_with_engine(
                    machine,
                    &over_cfg,
                    input.clone(),
                    ExchangeEngine::Flat,
                )
                .0
            });
            let radix_cfg = RadixConfig::recommended(RANKS);
            assert_sync_neutral(&format!("radix/{}", dist.name()), topo, |machine| {
                radix_partition_sort_with_engine(
                    machine,
                    &radix_cfg,
                    input.clone(),
                    ExchangeEngine::Flat,
                )
                .0
            });
            assert_sync_neutral(&format!("bitonic/{}", dist.name()), topo, |machine| {
                bitonic_sort_with_engine(machine, input.clone(), ExchangeEngine::Flat).0
            });
        }
    }
}

#[test]
fn overlapped_hss_sorts_correctly_and_never_slower_than_bsp() {
    // p = 32 so the α·(p − 1) term of the monolithic exchange is large
    // enough for the staged path's savings to be visible at test sizes.
    let p = 32;
    for dist in distributions() {
        let input = dist.generate_per_rank(p, 800, SEED);
        let cfg = HssConfig::default().with_seed(SEED);

        let mut bsp = Machine::flat(p);
        let bsp_out = HssSorter::new(cfg.clone()).sort(&mut bsp, input.clone());

        let mut ovl = Machine::flat(p).with_sync_model(SyncModel::Overlapped);
        let ovl_out = HssSorter::new(cfg).sort(&mut ovl, input.clone());

        verify_global_sort(&input, &ovl_out.data).unwrap();
        assert_eq!(ovl_out.report.sync_model, "overlapped");
        assert!(
            ovl_out.report.makespan_seconds <= bsp_out.report.makespan_seconds * (1.0 + 1e-12),
            "{}: overlapped {} above bsp {}",
            dist.name(),
            ovl_out.report.makespan_seconds,
            bsp_out.report.makespan_seconds
        );
        // Same keys end up in the output even though frozen splitters may
        // partition them slightly differently than the Bsp path.
        let mut a: Vec<u64> = bsp_out.data.into_iter().flatten().collect();
        let mut b: Vec<u64> = ovl_out.data.into_iter().flatten().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{}: key multiset diverged", dist.name());
    }
}

#[test]
fn overlapped_hss_strictly_faster_on_skewed_input_at_p_32() {
    // The tentpole claim at integration-test scale: enough keys per rank
    // that the exchange matters, skewed input, p >= 32.
    let p = 32;
    let input = KeyDistribution::PowerLaw { gamma: 4.0 }.generate_per_rank(p, 4_000, SEED);
    let cfg = HssConfig::default().with_seed(SEED);

    let mut bsp = Machine::flat(p);
    let bsp_out = HssSorter::new(cfg.clone()).sort(&mut bsp, input.clone());
    let mut ovl = Machine::flat(p).with_sync_model(SyncModel::Overlapped);
    let ovl_out = HssSorter::new(cfg).sort(&mut ovl, input);

    assert!(
        ovl_out.report.makespan_seconds < bsp_out.report.makespan_seconds,
        "overlapped {} not strictly below bsp {}",
        ovl_out.report.makespan_seconds,
        bsp_out.report.makespan_seconds
    );
    // The load-balance guarantee survives splitter freezing.
    assert!(ovl_out.report.satisfies(0.1), "imbalance {}", ovl_out.report.imbalance());
}
