//! Statistical checks of the paper's theorems: the probabilistic guarantees
//! are exercised over repeated trials with fixed seeds and the empirical
//! failure rates compared against (generous relaxations of) the stated
//! bounds.  These are integration tests because they combine the sampler,
//! the interval bookkeeping and the simulator.

use hss_repro::core::theory;
use hss_repro::core::{
    determine_splitters, scanning_splitters, ApproxHistogrammer, HssConfig, RoundSchedule,
};
use hss_repro::partition::{bucket_counts, exact_rank, LoadBalance};
use hss_repro::prelude::*;

fn sorted_input(dist: KeyDistribution, p: usize, n: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut data = dist.generate_per_rank(p, n, seed);
    for v in &mut data {
        v.sort_unstable();
    }
    data
}

fn global_bucket_counts(data: &[Vec<u64>], splitters: &SplitterSet<u64>) -> Vec<u64> {
    let mut totals = vec![0u64; splitters.buckets()];
    for local in data {
        for (i, c) in bucket_counts(local, splitters).iter().enumerate() {
            totals[i] += c;
        }
    }
    totals
}

/// Theorem 3.2.1 / scanning algorithm: with sampling ratio 2/ε the last
/// processor's load stays within N(1+ε)/p — check the empirical failure
/// rate over many trials.
#[test]
fn theorem_3_2_1_scanning_last_processor_bound() {
    let p = 32;
    let n = 1_000;
    let eps = 0.2;
    let trials = 20;
    let mut failures = 0;
    for t in 0..trials {
        let data = sorted_input(KeyDistribution::Uniform, p, n, 100 + t);
        let mut machine = Machine::flat(p);
        let (splitters, _rep) = scanning_splitters(&mut machine, &data, p, eps, 7_000 + t);
        let lb = LoadBalance::from_counts(&global_bucket_counts(&data, &splitters));
        if !lb.satisfies(eps) {
            failures += 1;
        }
    }
    // The bound is exp(-p eps^2 / 2(1+eps)^2) ~ 0.64 per-trial at this small
    // p, but in practice failures are rare; insist on a clear majority of
    // successes to catch gross implementation errors without flaking.
    assert!(failures <= trials / 4, "{failures}/{trials} scanning trials missed the bound");
}

/// Theorem 3.2.2 / Lemma 3.2.1: one round of histogramming with sampling
/// ratio 2 ln p / ε finalizes every splitter w.h.p.
#[test]
fn lemma_3_2_1_one_round_finalizes_all_splitters() {
    let p = 32;
    let n = 2_000;
    let eps = 0.1;
    let trials = 10;
    let mut failures = 0;
    for t in 0..trials {
        let data = sorted_input(KeyDistribution::Uniform, p, n, 200 + t);
        let mut machine = Machine::flat(p);
        let config = HssConfig {
            epsilon: eps,
            schedule: RoundSchedule::Theoretical { rounds: 1 },
            ..HssConfig::default()
        }
        .with_seed(t);
        let (splitters, report) = determine_splitters(&mut machine, &data, p, &config);
        let lb = LoadBalance::from_counts(&global_bucket_counts(&data, &splitters));
        if !report.all_finalized || !lb.satisfies(eps) {
            failures += 1;
        }
    }
    // Failure probability is at most ~1/p per trial; tolerate one fluke.
    assert!(failures <= 1, "{failures}/{trials} one-round trials failed");
}

/// Theorems 3.3.1/3.3.2: the union of the splitter intervals after round j
/// is bounded by ~6N/s_j; verify the measured G_j against the bound with the
/// theoretical schedule.
#[test]
fn theorem_3_3_2_interval_union_shrinks_as_predicted() {
    let p = 64;
    let n = 2_000;
    let eps = 0.05;
    let k = 3;
    let data = sorted_input(KeyDistribution::Uniform, p, n, 42);
    let total = (p * n) as u64;
    let mut machine = Machine::flat(p);
    let config = HssConfig {
        epsilon: eps,
        schedule: RoundSchedule::Theoretical { rounds: k },
        ..HssConfig::default()
    };
    let (_s, report) = determine_splitters(&mut machine, &data, p, &config);
    let ratios = theory::sampling_ratios(k, p, eps);
    for (j, round) in report.rounds.iter().enumerate().take(k - 1) {
        let bound = 6.0 * total as f64 / ratios[j];
        assert!(
            (round.union_rank_size as f64) <= bound * 2.0,
            "round {}: G_j = {} exceeds twice the theorem bound {}",
            j + 1,
            round.union_rank_size,
            bound
        );
    }
}

/// Theorem 3.3.4 / Lemma 3.3.1: after k rounds with ratios (2 ln p/ε)^{j/k}
/// every splitter is finalized w.h.p., for several k.
#[test]
fn theorem_3_3_4_multi_round_stopping() {
    let p = 32;
    let n = 2_000;
    let eps = 0.1;
    for k in [2usize, 3, 4] {
        let mut failures = 0;
        for t in 0..5u64 {
            let data = sorted_input(KeyDistribution::Uniform, p, n, 300 + t);
            let mut machine = Machine::flat(p);
            let config = HssConfig {
                epsilon: eps,
                schedule: RoundSchedule::Theoretical { rounds: k },
                ..HssConfig::default()
            }
            .with_seed(t * 13);
            let (_s, report) = determine_splitters(&mut machine, &data, p, &config);
            if !report.all_finalized {
                failures += 1;
            }
        }
        assert!(failures <= 1, "k = {k}: {failures}/5 trials did not finalize");
    }
}

/// Theorem 3.4.1: the representative-sample rank oracle errs by at most
/// εN/p w.h.p. with the prescribed sample size.
#[test]
fn theorem_3_4_1_approximate_rank_error_bound() {
    let p = 32;
    let n = 5_000;
    let eps = 0.2;
    let total = (p * n) as u64;
    let allowed = eps * total as f64 / p as f64;
    let mut violations = 0usize;
    let mut queries_total = 0usize;
    for t in 0..5u64 {
        let data = sorted_input(KeyDistribution::PowerLaw { gamma: 3.0 }, p, n, 400 + t);
        let mut machine = Machine::flat(p);
        let s = ApproxHistogrammer::<u64>::prescribed_sample_size(p, eps);
        let oracle = ApproxHistogrammer::build(
            &mut machine,
            &data,
            s,
            t,
            hss_repro::core::LocalSortAlgo::Radix,
        );
        let queries: Vec<u64> = (1..16).map(|i| i * (u64::MAX / 16)).collect();
        let estimates = oracle.estimated_global_ranks(&mut machine, &queries);
        for (q, est) in queries.iter().zip(estimates.iter()) {
            queries_total += 1;
            let truth = exact_rank(&data, *q) as f64;
            if (est - truth).abs() > allowed {
                violations += 1;
            }
        }
    }
    // The theorem's failure probability is 2p^{-4} per query; at finite size
    // allow a small number of near-boundary violations.
    assert!(
        violations * 10 <= queries_total,
        "{violations}/{queries_total} rank queries exceeded eps*N/p"
    );
}

/// Theorem 4.1.2 / Lemma 4.1.1: regular sampling with oversampling p/ε puts
/// every splitter's rank within N/(2s) = εN/(2p) of its target —
/// deterministically.
#[test]
fn theorem_4_1_2_regular_sampling_rank_bound() {
    use hss_repro::partition::regular_sample;
    let p = 16;
    let n = 2_000;
    let eps = 0.2;
    let data = sorted_input(KeyDistribution::Exponential { scale_frac: 0.01 }, p, n, 7);
    let total = (p * n) as u64;
    let s = ((p as f64) / eps).ceil() as usize;
    // Gather the regular sample from every rank and pick splitters exactly
    // as in the theorem statement: S_i = λ_{s·i − p/2} from the combined
    // sorted sample λ_0..λ_{ps−1}.
    let mut sample: Vec<u64> = Vec::new();
    for local in &data {
        sample.extend(regular_sample(local, s));
    }
    sample.sort_unstable();
    assert_eq!(sample.len(), p * s);
    let theorem_bound = (total as f64) / (2.0 * s as f64); // N/(2s) = eps*N/(2p)
    let block = total as f64 / (p as f64 * s as f64); // finite-block granularity
    for i in 1..p {
        let idx = s * i - p / 2;
        let key = sample[idx.min(sample.len() - 1)];
        let target = total * i as u64 / p as u64;
        let rank = exact_rank(&data, key) as f64;
        assert!(
            (rank - target as f64).abs() <= theorem_bound + block + 1.0,
            "splitter {i}: rank {rank} vs target {target} (bound {theorem_bound})"
        );
    }
}

/// Table 6.1's bound: the constant-oversampling schedule needs no more
/// rounds than ⌈ln(2 ln p/ε)/ln(f/2)⌉.
#[test]
fn table_6_1_round_bound_holds() {
    let eps = 0.02;
    for p in [256usize, 1024] {
        let data = sorted_input(KeyDistribution::Uniform, p, 1_000, 5);
        let mut machine = Machine::flat(p);
        let config = HssConfig {
            epsilon: eps,
            schedule: RoundSchedule::ConstantOversampling { oversampling: 5.0, max_rounds: 64 },
            ..HssConfig::default()
        };
        let (_s, report) = determine_splitters(&mut machine, &data, p, &config);
        let bound = theory::round_bound_constant_oversampling(p, eps, 5.0);
        assert!(report.all_finalized);
        assert!(
            report.rounds_executed() <= bound,
            "p = {p}: {} rounds > bound {bound}",
            report.rounds_executed()
        );
    }
}
