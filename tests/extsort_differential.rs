//! Out-of-core differential suite: the external sorter must be *bitwise
//! indistinguishable* from the in-memory path in everything but where the
//! bytes live while being sorted.
//!
//! * **Sorter level** — `ExternalSorter::sort_to_vec` vs an in-memory sort
//!   of the same input, across key distributions × memory caps chosen to
//!   hit the interesting run-count regimes (single run, a run boundary one
//!   element wide, runs ≫ fan-in forcing multi-pass merges) × both I/O
//!   modes × `u64` and 100-byte `TeraRecord` payloads.
//! * **Distributed level** — `HssSorter::sort_out_of_core` vs
//!   `HssSorter::sort` on identical inputs and machines: same per-rank
//!   output, and a deterministic simulator signature that is identical at
//!   1 and 4 rayon threads (the extsort I/O threads are plain
//!   `std::thread` and must not perturb the modelled costs).
//! * **Proptest** — fuzzes chunk-boundary geometry (arbitrary input length
//!   vs arbitrary tiny cap) and duplicate-heavy inputs against
//!   `sort_unstable`.

use hss_repro::extsort::{ExtSortConfig, ExternalSorter, IoMode};
use hss_repro::keygen::{generate_tera_records_per_rank, TeraRecord};
use hss_repro::lsort::radix_sort;
use hss_repro::prelude::*;

use proptest::collection::vec;
use proptest::prelude::*;

const SEED: u64 = 2019;

fn scratch_root() -> std::path::PathBuf {
    std::env::temp_dir().join("hss-extsort-differential")
}

fn cfg(cap: usize, fan_in: usize, mode: IoMode) -> ExtSortConfig {
    ExtSortConfig::new(cap, scratch_root()).with_fan_in(fan_in).with_io_mode(mode)
}

/// Memory caps that exercise the run-count regimes for `n` elements of
/// size `s`: one run exactly; a cap one element short of one chunk (run
/// boundary splits the input 1 element from the end); and a tiny cap that
/// with fan-in 2 forces several merge passes.
fn interesting_caps(n: usize, s: usize) -> Vec<(usize, usize)> {
    vec![
        (2 * n * s, 16),              // chunk == n: single run, trivial merge
        (2 * (n - 1) * s, 16),        // chunk == n-1: second run holds 1 element
        (2 * (n / 10).max(1) * s, 2), // ~10 runs at fan-in 2: multi-pass
    ]
}

fn distributions() -> [KeyDistribution; 4] {
    [
        KeyDistribution::Uniform,
        KeyDistribution::PowerLaw { gamma: 4.0 },
        KeyDistribution::FewDistinct { distinct: 5 },
        KeyDistribution::Staggered,
    ]
}

#[test]
fn external_sort_matches_in_memory_across_dists_caps_and_modes() {
    let n = 4_000;
    for dist in distributions() {
        let input: Vec<u64> =
            dist.generate_per_rank(4, n / 4, SEED).into_iter().flatten().collect();
        let mut expected = input.clone();
        radix_sort(&mut expected);
        for (cap, fan_in) in interesting_caps(n, std::mem::size_of::<u64>()) {
            for mode in [IoMode::Synchronous, IoMode::Overlapped] {
                let sorter = ExternalSorter::new(cfg(cap, fan_in, mode));
                let (got, rep) = sorter.sort_to_vec(input.iter().copied()).unwrap();
                assert_eq!(
                    got,
                    expected,
                    "{} cap={cap} fan_in={fan_in} mode={}",
                    dist.name(),
                    mode.name()
                );
                assert_eq!(rep.elements, n as u64);
                let expected_runs = n.div_ceil(cfg(cap, fan_in, mode).chunk_elems::<u64>());
                assert_eq!(rep.runs_formed, expected_runs as u64);
            }
        }
    }
}

#[test]
fn external_sort_matches_in_memory_for_tera_records() {
    let n = 1_200;
    let s = std::mem::size_of::<TeraRecord>();
    assert_eq!(s, 100, "TeraRecord must be the 10-byte-key / 100-byte record");
    let input: Vec<TeraRecord> =
        generate_tera_records_per_rank(4, n / 4, SEED).into_iter().flatten().collect();
    let mut expected = input.clone();
    expected.sort_unstable();
    for (cap, fan_in) in interesting_caps(n, s) {
        for mode in [IoMode::Synchronous, IoMode::Overlapped] {
            let sorter = ExternalSorter::new(cfg(cap, fan_in, mode));
            let (got, rep) = sorter.sort_to_vec(input.iter().copied()).unwrap();
            assert_eq!(got, expected, "cap={cap} fan_in={fan_in} mode={}", mode.name());
            // 100-byte records: byte accounting must match exactly.
            assert!(rep.bytes_written >= (n * s) as u64);
            assert_eq!(rep.bytes_written, rep.bytes_read);
        }
    }
}

#[test]
fn both_io_modes_report_identical_shapes() {
    // Same input, same cap: the two arms must form the same runs, do the
    // same merge passes and move the same bytes — only scheduling differs.
    let input: Vec<u64> = KeyDistribution::Uniform.generate_per_rank(1, 5_000, 7).remove(0);
    let cap = 2 * 400 * 8; // 400-element chunks -> 13 runs -> 2 passes at fan-in 4
    let sync = ExternalSorter::new(cfg(cap, 4, IoMode::Synchronous));
    let over = ExternalSorter::new(cfg(cap, 4, IoMode::Overlapped));
    let (a, ra) = sync.sort_to_vec(input.iter().copied()).unwrap();
    let (b, rb) = over.sort_to_vec(input.iter().copied()).unwrap();
    assert_eq!(a, b);
    assert_eq!(ra.runs_formed, rb.runs_formed);
    assert_eq!(ra.merge_passes, rb.merge_passes);
    assert!(ra.merge_passes == 2, "13 runs at fan-in 4 is a 2-pass merge");
    assert_eq!(ra.bytes_written, rb.bytes_written);
    assert_eq!(ra.bytes_read, rb.bytes_read);
    assert_eq!(ra.write_transfers, rb.write_transfers);
    assert_eq!(ra.read_transfers, rb.read_transfers);
}

/// One row of [`hss_sim::PhaseMetrics::deterministic_signature`].
type SignatureRow = (&'static str, u64, u64, u64, u64, u64, u64);

/// Run `sort_out_of_core` on a pool with `threads` rayon threads and
/// return (per-rank data, deterministic signature, makespan).
fn distributed_run(
    input: &[Vec<u64>],
    policy: ExtSortPolicy,
    threads: usize,
) -> (Vec<Vec<u64>>, Vec<SignatureRow>, f64) {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("test pool");
    pool.install(|| {
        let ranks = input.len();
        let mut machine = Machine::flat(ranks);
        let cfg = HssConfig::default().with_ext_sort(policy);
        let (outcome, ext) = HssSorter::new(cfg).sort_out_of_core(&mut machine, input.to_vec());
        assert!(ext.runs_formed > 0, "cap must force the external path");
        (outcome.data, machine.metrics().deterministic_signature(), machine.simulated_time())
    })
}

#[test]
fn distributed_out_of_core_is_bitwise_identical_and_thread_invariant() {
    let p = 8;
    let n = 900;
    for dist in distributions() {
        let input = dist.generate_per_rank(p, n, SEED);
        let mut m_ref = Machine::flat(p);
        let reference = HssSorter::default().sort(&mut m_ref, input.clone());

        // Cap = 1/4 of a rank's bytes: every rank spills its local sort.
        let policy = |mode: IoMode| {
            ExtSortPolicy::new(n * 8 / 4, scratch_root().to_string_lossy().into_owned())
                .with_fan_in(2)
                .with_io_mode(mode)
        };
        let (d1, s1, mk1) = distributed_run(&input, policy(IoMode::Overlapped), 1);
        let (d4, s4, mk4) = distributed_run(&input, policy(IoMode::Overlapped), 4);
        let (ds, ss, _) = distributed_run(&input, policy(IoMode::Synchronous), 1);

        assert_eq!(d1, reference.data, "{} vs in-memory", dist.name());
        assert_eq!(d1, d4, "{}: thread-count must not change output", dist.name());
        assert_eq!(d1, ds, "{}: I/O mode must not change output", dist.name());
        assert_eq!(s1, s4, "{}: signature must be thread-invariant", dist.name());
        assert_eq!(s1, ss, "{}: host I/O scheduling must not change modelled cost", dist.name());
        assert_eq!(mk1, mk4);
        verify_global_sort_ok(&input, &d1);
    }
}

fn verify_global_sort_ok(input: &[Vec<u64>], output: &[Vec<u64>]) {
    hss_repro::partition::verify_global_sort(input, output).expect("global sort");
}

/// Cases per property, overridable via `PROPTEST_CASES` (repo convention).
fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: configured_cases(), ..ProptestConfig::default() })]

    /// Arbitrary input length vs arbitrary tiny chunk geometry: every
    /// relationship between `n` and the chunk/block sizes (empty input,
    /// n < chunk, n % chunk == 0, n % chunk == 1, ...) must round-trip.
    #[test]
    fn chunk_boundary_geometry_round_trips(
        input in vec(any::<u64>(), 0..400),
        chunk_elems in 1usize..48,
        fan_in in 2usize..6,
    ) {
        let cap = 2 * chunk_elems * std::mem::size_of::<u64>();
        let mut expected = input.clone();
        expected.sort_unstable();
        for mode in [IoMode::Synchronous, IoMode::Overlapped] {
            let sorter = ExternalSorter::new(cfg(cap, fan_in, mode));
            let (got, rep) = sorter.sort_to_vec(input.iter().copied()).unwrap();
            prop_assert_eq!(&got, &expected, "mode={}", mode.name());
            prop_assert_eq!(rep.elements as usize, input.len());
        }
    }

    /// Duplicate-heavy keys (8 distinct values): run boundaries land
    /// inside giant equal ranges, and the loser tree's lower-run-index
    /// tie-break must still produce the canonical sorted order.
    #[test]
    fn duplicate_heavy_inputs_sort_identically(
        input in vec(0u64..8, 0..600),
        chunk_elems in 1usize..32,
    ) {
        let cap = 2 * chunk_elems * std::mem::size_of::<u64>();
        let mut expected = input.clone();
        expected.sort_unstable();
        let sorter = ExternalSorter::new(cfg(cap, 2, IoMode::Overlapped));
        let (got, _) = sorter.sort_to_vec(input.iter().copied()).unwrap();
        prop_assert_eq!(got, expected);
    }
}
