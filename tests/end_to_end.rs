//! Cross-crate integration tests: every sorting algorithm in the
//! repository, run end to end on the simulator over a matrix of input
//! distributions, must produce a correct global sort; the algorithms with a
//! load-balance guarantee must honour it.

use hss_repro::baselines::{
    BitonicSorter, HistogramSortConfig, OverPartitioningConfig, RadixConfig, SampleSortConfig,
};
use hss_repro::partition::verify_global_sort;
use hss_repro::prelude::*;

const P: usize = 16;
const KEYS_PER_RANK: usize = 800;
const EPS: f64 = 0.1;

fn distributions() -> Vec<KeyDistribution> {
    vec![
        KeyDistribution::Uniform,
        KeyDistribution::Normal { mean_frac: 0.5, std_frac: 0.05 },
        KeyDistribution::Exponential { scale_frac: 0.001 },
        KeyDistribution::PowerLaw { gamma: 4.0 },
        KeyDistribution::Staggered,
        KeyDistribution::Sorted,
        KeyDistribution::ReverseSorted,
    ]
}

#[test]
fn hss_sorts_and_balances_every_distribution() {
    for dist in distributions() {
        let input = dist.generate_per_rank(P, KEYS_PER_RANK, 21);
        let mut machine = Machine::flat(P);
        let sorter = HssSorter::new(HssConfig { epsilon: EPS, ..HssConfig::default() });
        let outcome = sorter.sort(&mut machine, input.clone());
        verify_global_sort(&input, &outcome.data)
            .unwrap_or_else(|e| panic!("HSS on {}: {e}", dist.name()));
        assert!(
            outcome.report.satisfies(EPS),
            "HSS on {}: imbalance {}",
            dist.name(),
            outcome.report.imbalance()
        );
        assert!(outcome.report.splitters.as_ref().unwrap().all_finalized);
    }
}

#[test]
fn hss_one_and_two_round_schedules_sort_correctly() {
    for rounds in [1usize, 2, 3] {
        let input = KeyDistribution::Uniform.generate_per_rank(P, KEYS_PER_RANK, 5);
        let mut machine = Machine::flat(P);
        let sorter = HssSorter::new(HssConfig {
            epsilon: EPS,
            schedule: RoundSchedule::Theoretical { rounds },
            ..HssConfig::default()
        });
        let outcome = sorter.sort(&mut machine, input.clone());
        verify_global_sort(&input, &outcome.data).unwrap();
        let sp = outcome.report.splitters.as_ref().unwrap();
        assert!(
            sp.rounds_executed() <= rounds,
            "theoretical schedule must run at most k rounds (ran {})",
            sp.rounds_executed()
        );
        // Stopping before the k-th round is only legal once every splitter
        // is finalized (the fixed-schedule early-exit rule).
        assert!(
            sp.rounds_executed() == rounds || sp.all_finalized,
            "stopped after {} of {rounds} rounds without finalizing",
            sp.rounds_executed()
        );
        assert!(outcome.report.satisfies(EPS), "k = {rounds}: {}", outcome.report.imbalance());
    }
}

#[test]
fn hss_scanning_rule_sorts_and_balances() {
    let input = KeyDistribution::Uniform.generate_per_rank(P, 2_000, 9);
    let mut machine = Machine::flat(P);
    let sorter = HssSorter::new(HssConfig {
        epsilon: 0.15,
        schedule: RoundSchedule::Theoretical { rounds: 1 },
        splitter_rule: SplitterRule::Scanning,
        ..HssConfig::default()
    });
    let outcome = sorter.sort(&mut machine, input.clone());
    verify_global_sort(&input, &outcome.data).unwrap();
    assert!(outcome.report.satisfies(0.15), "imbalance {}", outcome.report.imbalance());
}

#[test]
fn sample_sort_baselines_sort_every_distribution() {
    for dist in distributions() {
        let input = dist.generate_per_rank(P, KEYS_PER_RANK, 33);
        for cfg in [SampleSortConfig::regular(EPS), SampleSortConfig::random(EPS)] {
            let mut machine = Machine::flat(P);
            let outcome = cfg.run(&mut machine, SortRequest::new(input.clone())).unwrap();
            verify_global_sort(&input, &outcome.data)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", outcome.report.algorithm, dist.name()));
        }
    }
}

#[test]
fn regular_sampling_guarantee_is_deterministic() {
    // Lemma 4.1.1 is a deterministic guarantee (no "w.h.p."): check it on a
    // skewed input too.
    for dist in [KeyDistribution::Uniform, KeyDistribution::PowerLaw { gamma: 5.0 }] {
        let input = dist.generate_per_rank(P, KEYS_PER_RANK, 17);
        let mut machine = Machine::flat(P);
        let report = SampleSortConfig::regular(EPS)
            .run(&mut machine, SortRequest::new(input))
            .unwrap()
            .report;
        assert!(
            report.load_balance.satisfies(EPS),
            "{}: imbalance {}",
            dist.name(),
            report.imbalance()
        );
    }
}

#[test]
fn classic_histogram_sort_matches_hss_output() {
    let input =
        KeyDistribution::Exponential { scale_frac: 0.01 }.generate_per_rank(P, KEYS_PER_RANK, 3);
    let mut m1 = Machine::flat(P);
    let out_classic = HistogramSortConfig::new(EPS, P)
        .run(&mut m1, SortRequest::new(input.clone()))
        .unwrap()
        .data;
    let mut m2 = Machine::flat(P);
    let hss = HssSorter::new(HssConfig { epsilon: EPS, ..HssConfig::default() })
        .sort(&mut m2, input.clone());
    // Different splitters are allowed, but both must be valid sorts of the
    // same multiset.
    verify_global_sort(&input, &out_classic).unwrap();
    verify_global_sort(&input, &hss.data).unwrap();
    let a: Vec<u64> = out_classic.into_iter().flatten().collect();
    let b: Vec<u64> = hss.data.into_iter().flatten().collect();
    assert_eq!(a, b, "the two sorted sequences must be identical");
}

#[test]
fn other_baselines_sort_correctly() {
    let input = KeyDistribution::Uniform.generate_per_rank(P, KEYS_PER_RANK, 13);

    let mut machine = Machine::flat(P);
    let out = OverPartitioningConfig::recommended(P)
        .run(&mut machine, SortRequest::new(input.clone()))
        .unwrap()
        .data;
    verify_global_sort(&input, &out).unwrap();

    let mut machine = Machine::flat(P);
    let out = BitonicSorter.run(&mut machine, SortRequest::new(input.clone())).unwrap().data;
    verify_global_sort(&input, &out).unwrap();

    let mut machine = Machine::flat(P);
    let out = RadixConfig::recommended(P)
        .run(&mut machine, SortRequest::new(input.clone()))
        .unwrap()
        .data;
    verify_global_sort(&input, &out).unwrap();
}

#[test]
fn records_keep_their_payloads_through_every_splitter_algorithm() {
    let input = KeyDistribution::Uniform.generate_records_per_rank(P, 400, 77);
    // HSS.
    let mut machine = Machine::flat(P);
    let outcome = HssSorter::default().sort(&mut machine, input.clone());
    for rec in outcome.data.iter().flatten() {
        assert_eq!(*rec, Record::with_derived_payload(rec.key));
    }
    // Sample sort.
    let mut machine = Machine::flat(P);
    let out =
        SampleSortConfig::regular(0.1).run(&mut machine, SortRequest::new(input)).unwrap().data;
    for rec in out.iter().flatten() {
        assert_eq!(*rec, Record::with_derived_payload(rec.key));
    }
}

#[test]
fn hss_report_metrics_cover_all_phases_and_costs_are_positive() {
    let input = KeyDistribution::Uniform.generate_per_rank(P, KEYS_PER_RANK, 1);
    let mut machine = Machine::flat(P);
    let outcome = HssSorter::default().sort(&mut machine, input);
    let m = &outcome.report.metrics;
    assert!(m.phase(Phase::LocalSort).simulated_seconds > 0.0);
    assert!(m.phase(Phase::Sampling).simulated_seconds > 0.0);
    assert!(m.phase(Phase::Histogramming).simulated_seconds > 0.0);
    assert!(m.phase(Phase::DataExchange).simulated_seconds > 0.0);
    assert!(m.phase(Phase::Merge).simulated_seconds > 0.0);
    assert!(m.total_messages() > 0);
    assert!(m.total_comm_words() > 0);
}

#[test]
fn changa_datasets_end_to_end_with_all_algorithms() {
    for ds in [ChangaDataset::lambb_like(5), ChangaDataset::dwarf_like(5)] {
        let input = ds.generate_keys_per_rank(P, 600, 11);
        let mut machine = Machine::flat(P);
        let outcome = HssSorter::new(
            HssConfig { epsilon: EPS, ..HssConfig::default() }.with_duplicate_tagging(),
        )
        .sort(&mut machine, input.clone());
        verify_global_sort(&input, &outcome.data).unwrap();
        assert!(outcome.report.satisfies(EPS), "{}: {}", ds.name, outcome.report.imbalance());

        let mut machine = Machine::flat(P);
        let out = HistogramSortConfig::new(EPS, P)
            .run(&mut machine, SortRequest::new(input.clone()))
            .unwrap()
            .data;
        verify_global_sort(&input, &out).unwrap();
    }
}
