//! Sequential-vs-parallel differential suite.
//!
//! The simulator's [`Parallelism::Sequential`] mode is the determinism
//! oracle: every sorter, run on every key distribution, must produce
//! *bitwise-identical* per-rank output and *identical* simulated-cost
//! accounting when its local phases execute on a real multi-threaded pool
//! ([`Parallelism::Rayon`]) instead.  These tests force a pool with three
//! OS threads (independent of the host's core count and of
//! `RAYON_NUM_THREADS`) so the parallel side is genuinely parallel even on
//! a single-core CI runner.
//!
//! Matrix: every sorter (HSS, sample sort ×2 sampling methods, classic
//! histogram sort, radix, bitonic, over-partitioning) × 3 key
//! distributions (uniform, power-law skew, duplicate-heavy) × 2 seeds.

use std::sync::OnceLock;

use hss_repro::baselines::{
    BitonicSorter, HistogramSortConfig, OverPartitioningConfig, RadixConfig, SampleSortConfig,
};
use hss_repro::partition::verify_global_sort;
use hss_repro::prelude::*;
use hss_repro::sim::Parallelism;

const RANKS: usize = 8;
const KEYS_PER_RANK: usize = 400;
const SEEDS: [u64; 2] = [2019, 77];
const POOL_THREADS: usize = 3;

/// The shared multi-threaded pool the parallel side runs on.
fn pool() -> &'static rayon::ThreadPool {
    static POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new().num_threads(POOL_THREADS).build().expect("test pool")
    })
}

/// The three distribution regimes of the matrix: uniform, heavy skew,
/// duplicate-heavy.
fn distributions() -> Vec<KeyDistribution> {
    vec![
        KeyDistribution::Uniform,
        KeyDistribution::PowerLaw { gamma: 4.0 },
        KeyDistribution::FewDistinct { distinct: 64 },
    ]
}

/// Run `sort` under Sequential and under Rayon (on a ≥2-thread pool) for
/// the full distribution × seed matrix and assert bitwise-identical
/// per-rank outputs and identical simulated-cost signatures.
fn assert_differential<F>(name: &str, sort: F)
where
    F: Fn(&mut Machine, u64, Vec<Vec<u64>>) -> Vec<Vec<u64>> + Send + Sync,
{
    for dist in distributions() {
        for seed in SEEDS {
            let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, seed);

            let mut seq_machine = Machine::flat(RANKS).with_parallelism(Parallelism::Sequential);
            let seq_out = sort(&mut seq_machine, seed, input.clone());
            let seq_sig = seq_machine.metrics().deterministic_signature();

            let (par_out, par_sig, host_threads) = pool().install(|| {
                // `Machine::new`/`flat` default to Parallelism::Rayon.
                let mut par_machine = Machine::flat(RANKS);
                let out = sort(&mut par_machine, seed, input.clone());
                let sig = par_machine.metrics().deterministic_signature();
                let threads = par_machine.metrics().host_threads();
                (out, sig, threads)
            });

            let ctx = format!("{name}, dist={}, seed={seed}", dist.name());
            assert_eq!(
                host_threads, POOL_THREADS as u64,
                "{ctx}: parallel run did not execute on the multi-threaded pool"
            );
            assert_eq!(seq_out, par_out, "{ctx}: per-rank outputs differ between seq and par");
            assert_eq!(
                seq_sig, par_sig,
                "{ctx}: simulated-cost accounting differs between seq and par"
            );
            // The oracle itself must be a correct global sort.
            verify_global_sort(&input, &seq_out)
                .unwrap_or_else(|e| panic!("{ctx}: sequential oracle output invalid: {e}"));
        }
    }
}

#[test]
fn hss_differential() {
    assert_differential("hss", |machine, seed, input| {
        let config = HssConfig { epsilon: 0.2, ..HssConfig::default() }
            .with_seed(seed)
            .with_duplicate_tagging();
        HssSorter::new(config).sort(machine, input).data
    });
}

#[test]
fn sample_sort_regular_differential() {
    assert_differential("sample-regular", |machine, _seed, input| {
        SampleSortConfig::regular(0.2).run(machine, SortRequest::new(input)).unwrap().data
    });
}

#[test]
fn sample_sort_random_differential() {
    assert_differential("sample-random", |machine, _seed, input| {
        SampleSortConfig::random(0.2).run(machine, SortRequest::new(input)).unwrap().data
    });
}

#[test]
fn histogram_sort_differential() {
    assert_differential("histogram", |machine, _seed, input| {
        HistogramSortConfig::new(0.2, RANKS).run(machine, SortRequest::new(input)).unwrap().data
    });
}

#[test]
fn radix_differential() {
    assert_differential("radix", |machine, _seed, input| {
        RadixConfig::recommended(RANKS).run(machine, SortRequest::new(input)).unwrap().data
    });
}

#[test]
fn bitonic_differential() {
    assert_differential("bitonic", |machine, _seed, input| {
        BitonicSorter.run(machine, SortRequest::new(input)).unwrap().data
    });
}

#[test]
fn over_partitioning_differential() {
    assert_differential("overpartition", |machine, _seed, input| {
        OverPartitioningConfig::recommended(RANKS)
            .run(machine, SortRequest::new(input))
            .unwrap()
            .data
    });
}
