//! Decision-tree classification differential suite.
//!
//! PR 7 rewired every probe/bucketize hot path through the branchless
//! [`DecisionTree`] (implicit-heap splitters, `<=`-goes-right semantics)
//! behind the shared three-way strategy rule.  The tree must be
//! *indistinguishable* from the historical per-element binary search in
//! everything but host-side speed:
//!
//! * **bitwise-identical routing** — `DecisionTree::bucket_of` /
//!   `bucket_indices` must equal `partition_point(|s| *s <= key)` for every
//!   key, including duplicates, keys equal to splitters, and the
//!   sentinel-adjacent extremes `u64::MIN` / `u64::MAX` (fuzzed below);
//! * **bitwise-identical rank vectors** — `ranks_lt` / `ranks_le` over
//!   sorted data must equal the per-probe binary-search oracle, so
//!   histogramming answers are independent of the strategy heuristic;
//! * **bitwise-identical end-to-end output** — every sorter that
//!   classifies (HSS, sample sort, classic histogram sort) must produce
//!   the same globally sorted data across exchange engine × sync model ×
//!   distribution now that classification can take the tree arm, and that
//!   output must match the `global_sorted` oracle.

use hss_repro::baselines::{
    histogram_sort_with_engine, sample_sort_with_engine, HistogramSortConfig, SampleSortConfig,
};
use hss_repro::partition::{
    global_sorted, local_ranks, local_ranks_le, verify_global_sort, DecisionTree, ExchangeEngine,
};
use hss_repro::prelude::*;

use proptest::prelude::*;

const RANKS: usize = 8;
const KEYS_PER_RANK: usize = 300;
const SEED: u64 = 97;

fn distributions() -> [KeyDistribution; 3] {
    [
        KeyDistribution::Uniform,
        KeyDistribution::PowerLaw { gamma: 4.0 },
        KeyDistribution::FewDistinct { distinct: 5 },
    ]
}

/// Run `sorter` over engine × sync on identical fresh machines; every run
/// must produce the same data, that data must be the globally sorted
/// oracle of `input`, and within each sync model the per-phase
/// `deterministic_signature()` must be bitwise-identical across engines —
/// classification charges follow the `(n, m)` shape, never the engine.
/// (Across sync models only the data is compared: the overlapped pipeline
/// legitimately stages its exchange and piggybacks its broadcasts, so its
/// message counts differ by design.)
fn assert_output_is_oracle<F>(label: &str, input: &[Vec<u64>], sorter: F)
where
    F: Fn(&mut Machine, ExchangeEngine) -> Vec<Vec<u64>>,
{
    let mut runs = Vec::new();
    for sync in [SyncModel::Bsp, SyncModel::Overlapped] {
        for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
            let mut machine = Machine::flat(RANKS).with_sync_model(sync);
            let out = sorter(&mut machine, engine);
            verify_global_sort(input, &out).unwrap();
            runs.push((sync, engine, out, machine.metrics().deterministic_signature()));
        }
    }
    let oracle = global_sorted(input);
    let flat: Vec<u64> = runs[0].2.iter().flatten().copied().collect();
    assert_eq!(flat, oracle, "{label}: output is not the sorted oracle");
    for (sync, engine, out, sig) in &runs[1..] {
        assert_eq!(&runs[0].2, out, "{label}: data diverged at {sync:?}/{engine:?}");
        let reference = runs.iter().find(|(s, ..)| s == sync).unwrap();
        assert_eq!(
            &reference.3, sig,
            "{label}: signature diverged between {:?} and {engine:?} under {sync:?}",
            reference.1
        );
    }
}

#[test]
fn hss_output_matches_oracle_across_engines_and_sync_models() {
    for dist in distributions() {
        let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
        assert_output_is_oracle(&format!("hss/{}", dist.name()), &input, |machine, engine| {
            let cfg = HssConfig::default().with_seed(SEED).with_exchange_engine(engine);
            HssSorter::new(cfg).sort(machine, input.clone()).data
        });
    }
}

#[test]
fn sample_sort_output_matches_oracle_across_engines_and_sync_models() {
    for dist in distributions() {
        let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
        assert_output_is_oracle(&format!("sample/{}", dist.name()), &input, |machine, engine| {
            sample_sort_with_engine(machine, &SampleSortConfig::regular(0.2), input.clone(), engine)
                .0
        });
    }
}

#[test]
fn histogram_sort_output_matches_oracle_across_engines_and_sync_models() {
    for dist in distributions() {
        let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
        assert_output_is_oracle(
            &format!("histogram/{}", dist.name()),
            &input,
            |machine, engine| {
                let cfg = HistogramSortConfig::new(0.1, RANKS);
                histogram_sort_with_engine(machine, &cfg, input.clone(), engine).0
            },
        );
    }
}

// ---------------------------------------------------------------------------
// Property-based coverage of the decision tree itself
// ---------------------------------------------------------------------------

/// The binary-search routing oracle: the bucket index every classification
/// path historically produced.
fn oracle_bucket(splitters: &[u64], key: u64) -> usize {
    splitters.partition_point(|s| *s <= key)
}

/// Map a sampled `(selector, raw)` pair to an edge-biased key: the
/// sentinel-adjacent extremes `u64::MIN` / `u64::MAX` / `u64::MAX - 1`, a
/// duplicate-heavy narrow band (collisions with splitters), or anything.
/// These are the cases where `<=`-goes-right semantics can silently drift.
fn edge_bias((sel, raw): (u8, u64)) -> u64 {
    match sel % 5 {
        0 => u64::MIN,
        1 => u64::MAX,
        2 => u64::MAX - 1,
        3 => raw % 1_000,
        _ => raw,
    }
}

/// Edge-biased value vectors of irregular lengths (the vendored proptest
/// stub has no `prop_oneof`/`prop_map`, so the bias is applied in-body).
fn edge_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..5, any::<u64>()), len)
}

proptest! {
    #[test]
    fn tree_bucket_of_matches_partition_point(
        raw_splitters in edge_vec(0..70),
        raw_keys in edge_vec(0..200),
    ) {
        let mut splitters: Vec<u64> = raw_splitters.into_iter().map(edge_bias).collect();
        splitters.sort_unstable();
        let keys: Vec<u64> = raw_keys.into_iter().map(edge_bias).collect();
        let tree = DecisionTree::from_splitters(&splitters);
        for key in keys {
            prop_assert_eq!(tree.bucket_of(key), oracle_bucket(&splitters, key));
        }
        let set = SplitterSet::new(splitters.clone());
        for &s in &splitters {
            prop_assert_eq!(set.bucket_of(s), oracle_bucket(&splitters, s));
            prop_assert_eq!(set.bucket_of(s.saturating_sub(1)),
                oracle_bucket(&splitters, s.saturating_sub(1)));
        }
    }

    #[test]
    fn four_wide_driver_matches_scalar_descends(
        raw_splitters in edge_vec(0..70),
        raw_keys in edge_vec(0..200),
    ) {
        // bucket_indices runs four keys in flight with a scalar remainder;
        // every length mod 4 must agree with one-at-a-time descends.
        let mut splitters: Vec<u64> = raw_splitters.into_iter().map(edge_bias).collect();
        splitters.sort_unstable();
        let keys: Vec<u64> = raw_keys.into_iter().map(edge_bias).collect();
        let tree = DecisionTree::from_splitters(&splitters);
        let ids = tree.bucket_indices(&keys);
        prop_assert_eq!(ids.len(), keys.len());
        for (k, id) in keys.iter().zip(&ids) {
            prop_assert_eq!(*id as usize, oracle_bucket(&splitters, *k));
        }
    }

    #[test]
    fn tree_ranks_match_binary_search_oracle(
        mut data in proptest::collection::vec(0u64..500, 0..300),
        raw_splitters in edge_vec(0..70),
    ) {
        data.sort_unstable();
        let mut splitters: Vec<u64> = raw_splitters.into_iter().map(edge_bias).collect();
        splitters.sort_unstable();
        let tree = DecisionTree::from_splitters(&splitters);
        let lt: Vec<u64> =
            splitters.iter().map(|s| data.partition_point(|k| k < s) as u64).collect();
        let le: Vec<u64> =
            splitters.iter().map(|s| data.partition_point(|k| k <= s) as u64).collect();
        prop_assert_eq!(tree.ranks_lt(&data), lt.clone());
        prop_assert_eq!(tree.ranks_le(&data), le.clone());
        // The strategy-dispatching entry points must answer identically no
        // matter which arm the (n, m) shape lands in.
        prop_assert_eq!(local_ranks(&data, &splitters), lt);
        prop_assert_eq!(local_ranks_le(&data, &splitters), le);
    }
}

#[test]
fn explicit_sentinel_and_duplicate_edge_cases() {
    // Splitters at both extremes plus an interior duplicate run: the
    // MAX_KEY padding the tree adds must stay indistinguishable from real
    // splitters equal to MAX_KEY.
    let splitters = vec![u64::MIN, 5, 5, 5, 42, u64::MAX, u64::MAX];
    let tree = DecisionTree::from_splitters(&splitters);
    for key in [u64::MIN, 0, 1, 4, 5, 6, 41, 42, 43, u64::MAX - 1, u64::MAX] {
        assert_eq!(tree.bucket_of(key), oracle_bucket(&splitters, key), "key {key}");
    }
    assert_eq!(tree.bucket_of(u64::MIN), 1, "MIN splitter: <= sends MIN right");
    assert_eq!(tree.bucket_of(u64::MAX), splitters.len(), "MAX lands past every splitter");
    // An empty splitter set routes everything to bucket 0.
    let empty = DecisionTree::from_splitters(&[] as &[u64]);
    assert_eq!(empty.bucket_of(0), 0);
    assert_eq!(empty.bucket_of(u64::MAX), 0);
}
