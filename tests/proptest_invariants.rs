//! Property-based tests (proptest) of the core invariants: any input that
//! the generators can produce must sort correctly, splitter routing must be
//! consistent, interval bookkeeping must bracket targets, and the
//! bucketize/merge pair must be lossless.
//!
//! The machine-level properties run under *both* execution modes —
//! [`Parallelism::Sequential`] and [`Parallelism::Rayon`] on a real
//! two-thread pool — and additionally assert the two modes agree bitwise,
//! so every generated input doubles as a differential test case.

use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;

use hss_repro::core::{determine_splitters, HssConfig, RoundSchedule};
use hss_repro::partition::{
    kway_merge, local_ranks, merge_key_intervals, partition_sorted, verify_global_sort,
    LoadBalance, SplitterIntervals, SplitterSet,
};
use hss_repro::prelude::*;
use hss_repro::sim::Parallelism;

/// Arbitrary per-rank input: between 1 and 8 ranks, each with 0..200 keys.
fn per_rank_input() -> impl Strategy<Value = Vec<Vec<u64>>> {
    vec(vec(any::<u64>(), 0..200), 1..8)
}

/// A small but genuinely multi-threaded pool for the `Parallelism::Rayon`
/// leg of each property (independent of the host's core count and of
/// `RAYON_NUM_THREADS`, which only shapes the global pool).
fn test_pool() -> &'static rayon::ThreadPool {
    static POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new().num_threads(2).build().expect("proptest pool")
    })
}

/// Run `op` on a fresh machine under both parallelism modes and return both
/// results (sequential first).
fn under_both_modes<R, OP>(ranks: usize, op: OP) -> (R, R)
where
    R: Send,
    OP: Fn(&mut Machine) -> R + Send + Sync,
{
    let mut seq_machine = Machine::flat(ranks).with_parallelism(Parallelism::Sequential);
    let seq = op(&mut seq_machine);
    let par = test_pool().install(|| {
        let mut par_machine = Machine::flat(ranks).with_parallelism(Parallelism::Rayon);
        op(&mut par_machine)
    });
    (seq, par)
}

/// Cases per property. The standard `PROPTEST_CASES` variable overrides the
/// default of 24 so CI can bound the test job's runtime (and nightly jobs
/// can crank it up); zero or unparsable values fall back to the default.
fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: configured_cases(), ..ProptestConfig::default() })]

    #[test]
    fn hss_sorts_arbitrary_inputs(input in per_rank_input()) {
        let p = input.len();
        let config = HssConfig { epsilon: 0.5, ..HssConfig::default() }.with_duplicate_tagging();
        let (seq, par) = under_both_modes(p, |machine| {
            let outcome = HssSorter::new(config.clone()).sort(machine, input.clone());
            (outcome.data, machine.metrics().deterministic_signature())
        });
        prop_assert!(verify_global_sort(&input, &seq.0).is_ok());
        // The parallel pool must reproduce the sequential oracle exactly.
        prop_assert_eq!(&seq.0, &par.0);
        prop_assert_eq!(seq.1, par.1);
    }

    #[test]
    fn hss_balances_arbitrary_inputs_with_tagging(
        seed in 0u64..1000,
        p in 2usize..12,
        keys_per_rank in 50usize..300,
        gamma in 1.0f64..6.0,
    ) {
        // Tagging makes the (1+eps) guarantee hold regardless of duplicates
        // or skew; epsilon is kept moderate so the test stays cheap.
        let eps = 0.25;
        let input = KeyDistribution::PowerLaw { gamma }.generate_per_rank(p, keys_per_rank, seed);
        let config = HssConfig { epsilon: eps, ..HssConfig::default() }
            .with_duplicate_tagging()
            .with_seed(seed);
        let (seq, par) = under_both_modes(p, |machine| {
            let outcome = HssSorter::new(config.clone()).sort(machine, input.clone());
            (outcome.report.load_balance.clone(), outcome.data)
        });
        prop_assert!(seq.0.satisfies(eps), "imbalance {}", seq.0.imbalance);
        prop_assert_eq!(seq.1, par.1);
    }

    #[test]
    fn splitter_routing_is_consistent_with_boundaries(
        mut keys in vec(any::<u64>(), 1..300),
        mut splitter_keys in vec(any::<u64>(), 0..16),
    ) {
        keys.sort_unstable();
        splitter_keys.sort_unstable();
        let s = SplitterSet::new(splitter_keys);
        let bounds = s.bucket_boundaries(&keys);
        prop_assert_eq!(bounds.len(), s.buckets() + 1);
        prop_assert_eq!(*bounds.last().unwrap(), keys.len());
        for (bucket, w) in bounds.windows(2).enumerate() {
            for &k in &keys[w[0]..w[1]] {
                prop_assert_eq!(s.bucket_of(k), bucket);
            }
        }
    }

    #[test]
    fn partition_then_merge_is_identity(mut keys in vec(any::<u64>(), 0..400), buckets in 1usize..12) {
        keys.sort_unstable();
        let step = u64::MAX / buckets as u64;
        let splitters = SplitterSet::new((1..buckets as u64).map(|i| i * step).collect());
        let parts = partition_sorted(&keys, &splitters);
        prop_assert_eq!(parts.len(), buckets);
        let merged = kway_merge(parts);
        prop_assert_eq!(merged, keys);
    }

    #[test]
    fn local_ranks_are_monotone_and_bounded(
        mut keys in vec(any::<u64>(), 0..300),
        mut probes in vec(any::<u64>(), 0..300),
    ) {
        keys.sort_unstable();
        probes.sort_unstable();
        let ranks = local_ranks(&keys, &probes);
        prop_assert_eq!(ranks.len(), probes.len());
        prop_assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(ranks.iter().all(|&r| r <= keys.len() as u64));
    }

    #[test]
    fn merged_intervals_are_disjoint_and_cover_inputs(
        intervals in vec((any::<u32>(), any::<u32>()), 0..24)
    ) {
        let intervals: Vec<(u32, u32)> = intervals;
        let merged = merge_key_intervals(intervals.clone());
        // Disjoint and sorted.
        prop_assert!(merged.windows(2).all(|w| w[0].1 < w[1].0));
        // Every non-empty input interval is covered by some merged one.
        for (lo, hi) in intervals.into_iter().filter(|(lo, hi)| lo <= hi) {
            prop_assert!(
                merged.iter().any(|&(mlo, mhi)| mlo <= lo && hi <= mhi),
                "({lo}, {hi}) not covered by {merged:?}"
            );
        }
    }

    #[test]
    fn splitter_intervals_always_bracket_targets(
        total in 1u64..100_000,
        buckets in 2usize..32,
        probes in vec(any::<u64>(), 1..64),
    ) {
        let mut probes: Vec<u64> = probes;
        probes.sort_unstable();
        probes.dedup();
        // Fabricate consistent ranks: rank of probe = probe scaled into [0, total].
        let ranks: Vec<u64> = probes.iter().map(|&p| ((p as u128 * total as u128) >> 64) as u64).collect();
        let mut iv: SplitterIntervals<u64> = SplitterIntervals::new(total, buckets);
        iv.update(&probes, &ranks);
        for i in 0..iv.splitter_count() {
            let t = iv.target_rank(i);
            prop_assert!(iv.lower(i).rank <= t);
            prop_assert!(iv.upper(i).rank >= t);
            prop_assert!(iv.lower(i).rank <= iv.upper(i).rank);
        }
        // Best splitter keys are sorted.
        let keys = iv.best_splitter_keys();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn load_balance_metrics_are_consistent(counts in vec(0u64..10_000, 1..64)) {
        let lb = LoadBalance::from_counts(&counts);
        prop_assert_eq!(lb.total_keys, counts.iter().sum::<u64>());
        prop_assert!(lb.max_keys >= lb.min_keys);
        prop_assert!(lb.imbalance >= 1.0 - 1e-9);
        // satisfies() is monotone in epsilon.
        prop_assert!(!lb.satisfies(0.0) || lb.satisfies(1.0));
    }

    #[test]
    fn theoretical_schedule_runs_at_most_k_rounds(
        k in 1usize..4,
        p in 2usize..10,
        seed in 0u64..500,
    ) {
        let input = {
            let mut d = KeyDistribution::Uniform.generate_per_rank(p, 200, seed);
            for v in &mut d { v.sort_unstable(); }
            d
        };
        let config = HssConfig {
            epsilon: 0.3,
            schedule: RoundSchedule::Theoretical { rounds: k },
            ..HssConfig::default()
        };
        let (seq, par) = under_both_modes(p, |machine| {
            determine_splitters(machine, &input, p, &config)
        });
        // The fixed schedule is an upper bound: the run stops early exactly
        // when every splitter is already finalized (running further rounds
        // could only charge cost without improving anything).
        prop_assert!(seq.1.rounds_executed() <= k);
        if seq.1.rounds_executed() < k {
            prop_assert!(seq.1.all_finalized);
            prop_assert_eq!(seq.1.rounds.last().unwrap().open_after, 0);
        }
        prop_assert_eq!(seq.0.buckets(), p);
        // Splitter determination is bitwise mode-independent too.
        prop_assert_eq!(seq.0.keys(), par.0.keys());
        prop_assert_eq!(seq.1, par.1);
    }
}
