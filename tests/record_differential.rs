//! Wide-record differential suite: 100-byte terasort records
//! ([`TeraRecord`], a 10-byte [`ByteKey`] plus a 90-byte derived payload)
//! must sort exactly like their bare keys, keep every payload attached to
//! its key, and stay bitwise-deterministic across thread counts and sync
//! models — for every sorter in the registry and both exchange engines.
//!
//! Oracles:
//!
//! 1. **Bare-key order.**  Running a sorter over `Vec<Vec<TeraRecord>>` and
//!    the same sorter over the stripped `Vec<Vec<ByteKey<10>>>` must place
//!    the same key at every per-rank position: payloads ride along without
//!    influencing routing.
//! 2. **Payload integrity.**  After any sort, every record still satisfies
//!    [`TeraRecord::payload_matches_key`] — no payload was torn from its
//!    key by the move-by-index local-sort path or the flat exchanges.
//! 3. **Thread-count invariance.**  Sequential execution and a genuine
//!    4-thread pool produce bitwise-identical per-rank outputs and
//!    identical simulated-cost signatures.
//! 4. **Sync-model neutrality.**  Non-HSS sorters charge identically under
//!    Bsp and Overlapped; overlapped HSS still sorts correctly, keeps
//!    payloads intact and never exceeds the Bsp makespan.
//! 5. **Lexicographic oracle (proptest).**  `ByteKey` comparison, including
//!    equal-prefix and all-`0xFF` sentinel-adjacent keys, agrees with the
//!    `Vec<u8>` lexicographic order and with the key's own radix digits.

use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;

use hss_repro::baselines::standard_sorters_for;
use hss_repro::keygen::{generate_tera_records_per_rank, ByteKey, TeraRecord};
use hss_repro::lsort::RadixSortable;
use hss_repro::partition::{verify_global_sort, ExchangeEngine};
use hss_repro::prelude::*;
use hss_repro::sim::{Parallelism, SyncModel};

const RANKS: usize = 8; // power of two for the bitonic entry
const RECORDS_PER_RANK: usize = 250;
const SEED: u64 = 2019;
const EPS: f64 = 0.2;
const POOL_THREADS: usize = 4;

fn tera_input() -> Vec<Vec<TeraRecord>> {
    generate_tera_records_per_rank(RANKS, RECORDS_PER_RANK, SEED)
}

fn bare_keys(input: &[Vec<TeraRecord>]) -> Vec<Vec<ByteKey<10>>> {
    input.iter().map(|v| v.iter().map(|r| r.key).collect()).collect()
}

/// The shared multi-threaded pool for the parallel legs (independent of the
/// host's core count and of `RAYON_NUM_THREADS`).
fn pool() -> &'static rayon::ThreadPool {
    static POOL: OnceLock<rayon::ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new().num_threads(POOL_THREADS).build().expect("test pool")
    })
}

#[test]
fn tera_record_sort_matches_bare_key_sort_and_keeps_payloads() {
    let input = tera_input();
    let keys = bare_keys(&input);
    for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
        let record_sorters = standard_sorters_for::<TeraRecord>(RANKS, EPS);
        let key_sorters = standard_sorters_for::<ByteKey<10>>(RANKS, EPS);
        for (rs, ks) in record_sorters.iter().zip(key_sorters.iter()) {
            let label = format!("{}/{engine:?}", rs.algorithm());
            let mut rec_machine = Machine::flat(RANKS);
            let rec_out = rs
                .run(&mut rec_machine, SortRequest::new(input.clone()).with_engine(engine))
                .unwrap()
                .data;
            verify_global_sort(&input, &rec_out)
                .unwrap_or_else(|e| panic!("{label}: record sort invalid: {e}"));
            assert!(
                rec_out.iter().flatten().all(TeraRecord::payload_matches_key),
                "{label}: a payload was separated from its key"
            );

            let mut key_machine = Machine::flat(RANKS);
            let key_out = ks
                .run(&mut key_machine, SortRequest::new(keys.clone()).with_engine(engine))
                .unwrap()
                .data;
            for (rank, (recs, bare)) in rec_out.iter().zip(key_out.iter()).enumerate() {
                let rec_keys: Vec<ByteKey<10>> = recs.iter().map(|r| r.key).collect();
                assert_eq!(
                    &rec_keys, bare,
                    "{label}: rank {rank} key order differs from the bare-key sort"
                );
            }
        }
    }
}

#[test]
fn tera_record_sort_is_thread_count_invariant() {
    let input = tera_input();
    let sorter_count = standard_sorters_for::<TeraRecord>(RANKS, EPS).len();
    for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
        // `dyn Sorter` boxes are not `Sync`, so each leg rebuilds the
        // registry and picks its sorter by index.
        for idx in 0..sorter_count {
            let sorter = &standard_sorters_for::<TeraRecord>(RANKS, EPS)[idx];
            let label = format!("{}/{engine:?}", sorter.algorithm());
            let mut seq_machine = Machine::flat(RANKS).with_parallelism(Parallelism::Sequential);
            let seq = sorter
                .run(&mut seq_machine, SortRequest::new(input.clone()).with_engine(engine))
                .unwrap()
                .data;
            let seq_sig = seq_machine.metrics().deterministic_signature();

            let (par, par_sig, threads) = pool().install(|| {
                let sorter = &standard_sorters_for::<TeraRecord>(RANKS, EPS)[idx];
                let mut par_machine = Machine::flat(RANKS);
                let out = sorter
                    .run(&mut par_machine, SortRequest::new(input.clone()).with_engine(engine))
                    .unwrap()
                    .data;
                let sig = par_machine.metrics().deterministic_signature();
                (out, sig, par_machine.metrics().host_threads())
            });

            assert_eq!(
                threads, POOL_THREADS as u64,
                "{label}: parallel run did not execute on the 4-thread pool"
            );
            assert_eq!(seq, par, "{label}: output differs between 1 and {POOL_THREADS} threads");
            assert_eq!(seq_sig, par_sig, "{label}: cost signature differs across thread counts");
        }
    }
}

#[test]
fn tera_record_sorters_are_sync_model_neutral() {
    let input = tera_input();
    for topo in [Topology::flat(RANKS), Topology::new(RANKS, 4)] {
        for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
            for sorter in standard_sorters_for::<TeraRecord>(RANKS, EPS) {
                let label =
                    format!("{}/{engine:?}/{} cores", sorter.algorithm(), topo.cores_per_node());
                let mut bsp = Machine::new(topo, CostModel::bluegene_like());
                let out_bsp = sorter
                    .run(&mut bsp, SortRequest::new(input.clone()).with_engine(engine))
                    .unwrap()
                    .data;

                let mut ovl = Machine::new(topo, CostModel::bluegene_like())
                    .with_sync_model(SyncModel::Overlapped);
                let out_ovl = sorter
                    .run(&mut ovl, SortRequest::new(input.clone()).with_engine(engine))
                    .unwrap()
                    .data;

                verify_global_sort(&input, &out_ovl)
                    .unwrap_or_else(|e| panic!("{label}: overlapped sort invalid: {e}"));
                assert!(
                    out_ovl.iter().flatten().all(TeraRecord::payload_matches_key),
                    "{label}: overlapped run tore a payload from its key"
                );
                // Overlap can only shorten the timeline — except for HSS on
                // a node-combined topology, where the staged exchange gives
                // up node-level message combining (same trade-off the flat
                // sync suite sidesteps by asserting on flat machines only).
                if !(sorter.algorithm().starts_with("hss") && topo.cores_per_node() > 1) {
                    assert!(
                        ovl.simulated_time() <= bsp.simulated_time() * (1.0 + 1e-12),
                        "{label}: overlapped makespan {} above bsp {}",
                        ovl.simulated_time(),
                        bsp.simulated_time()
                    );
                }
                if sorter.algorithm().starts_with("hss") {
                    // HSS restructures its schedule under Overlapped (frozen
                    // splitters may differ), so only the multiset is pinned.
                    let mut a: Vec<TeraRecord> = out_bsp.into_iter().flatten().collect();
                    let mut b: Vec<TeraRecord> = out_ovl.into_iter().flatten().collect();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "{label}: record multiset diverged");
                } else {
                    assert_eq!(
                        out_bsp, out_ovl,
                        "{label}: per-rank data diverged across sync models"
                    );
                    assert_eq!(
                        bsp.metrics().deterministic_signature(),
                        ovl.metrics().deterministic_signature(),
                        "{label}: cost signature changed with the sync model"
                    );
                }
            }
        }
    }
}

/// Cases per property (see `tests/proptest_invariants.rs`).
fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(24)
}

fn to_key(bytes: &[u8]) -> ByteKey<10> {
    let mut a = [0u8; 10];
    a.copy_from_slice(bytes);
    ByteKey::new(a)
}

/// The key's digit string, for the digits-vs-Ord cross-check.
fn digits(k: ByteKey<10>) -> Vec<u8> {
    (0..<ByteKey<10> as RadixSortable>::RADIX_BYTES).map(|i| k.radix_byte(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: configured_cases(), ..ProptestConfig::default() })]

    #[test]
    fn byte_key_order_matches_lexicographic_oracle(
        a in vec(any::<u8>(), 10..11),
        b in vec(any::<u8>(), 10..11),
        shared_prefix in 0usize..11,
        ff_mask in any::<u16>(),
    ) {
        // Three derived pairs per case: the raw draw, an equal-prefix pair
        // (first `shared_prefix` bytes of `b` overwritten with `a`'s, so
        // order is decided deep in the suffix), and a sentinel-adjacent
        // pair with bytes forced to 0xFF wherever `ff_mask` has a bit set.
        let mut prefixed = b.clone();
        prefixed[..shared_prefix].copy_from_slice(&a[..shared_prefix]);
        let saturate = |v: &[u8]| -> Vec<u8> {
            v.iter()
                .enumerate()
                .map(|(i, &x)| if ff_mask & (1 << (i % 16)) != 0 { 0xFF } else { x })
                .collect()
        };
        let pairs =
            [(a.clone(), b.clone()), (a.clone(), prefixed), (saturate(&a), saturate(&b))];
        for (x, y) in pairs {
            let kx = to_key(&x);
            let ky = to_key(&y);
            prop_assert_eq!(kx.cmp(&ky), x.cmp(&y), "key order vs Vec<u8> oracle");
            prop_assert_eq!(kx == ky, x == y);
            // The radix digit string must induce exactly the same order.
            prop_assert_eq!(digits(kx).cmp(&digits(ky)), x.cmp(&y), "digit order vs oracle");
            // Sentinels bracket every key.
            prop_assert!(<ByteKey<10> as hss_repro::keygen::Key>::MIN_KEY <= kx);
            prop_assert!(kx <= <ByteKey<10> as hss_repro::keygen::Key>::MAX_KEY);
        }
    }
}
