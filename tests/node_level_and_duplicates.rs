//! Integration tests for the shared-memory (node-level) optimisation of
//! §6.1 and the duplicate-tagging scheme of §4.3, across crates.

use hss_repro::partition::verify_global_sort;
use hss_repro::prelude::*;
use hss_repro::sim::Phase as SimPhase;

const EPS: f64 = 0.05;

#[test]
fn node_level_and_flat_produce_the_same_sorted_sequence() {
    let p = 32;
    let input = KeyDistribution::Uniform.generate_per_rank(p, 1_000, 9);

    let mut flat_machine = Machine::new(Topology::new(p, 8), CostModel::bluegene_like());
    let flat =
        HssSorter::new(HssConfig { epsilon: EPS, node_level: false, ..HssConfig::default() })
            .sort(&mut flat_machine, input.clone());

    let mut node_machine = Machine::new(Topology::new(p, 8), CostModel::bluegene_like());
    let node = HssSorter::new(HssConfig { epsilon: EPS, ..HssConfig::default() }.with_node_level())
        .sort(&mut node_machine, input.clone());

    verify_global_sort(&input, &flat.data).unwrap();
    verify_global_sort(&input, &node.data).unwrap();
    let a: Vec<u64> = flat.data.into_iter().flatten().collect();
    let b: Vec<u64> = node.data.into_iter().flatten().collect();
    assert_eq!(a, b);
}

#[test]
fn node_level_reduces_messages_and_histogram_volume() {
    let p = 64;
    let cores = 16;
    let input = KeyDistribution::Uniform.generate_per_rank(p, 1_000, 3);

    let mut flat_machine = Machine::new(Topology::new(p, cores), CostModel::bluegene_like());
    let flat =
        HssSorter::new(HssConfig { epsilon: EPS, node_level: false, ..HssConfig::default() })
            .sort(&mut flat_machine, input.clone());

    let mut node_machine = Machine::new(Topology::new(p, cores), CostModel::bluegene_like());
    let node = HssSorter::new(HssConfig { epsilon: EPS, ..HssConfig::default() }.with_node_level())
        .sort(&mut node_machine, input);

    // §6.1.1: the exchange injects at most n(n-1) messages instead of up to
    // p(p-1) (the flat run already benefits from node-combining of the
    // exchange, so compare against the histogram/splitter path too).
    let node_msgs = node.report.metrics.phase(SimPhase::DataExchange).messages;
    assert!(node_msgs <= ((p / cores) * (p / cores - 1)) as u64);

    // Node-level splitting determines n-1 splitters instead of p-1, so the
    // total sample shrinks.
    let flat_sample = flat.report.splitters.as_ref().unwrap().total_sample_size;
    let node_sample = node.report.splitters.as_ref().unwrap().total_sample_size;
    assert!(
        node_sample < flat_sample,
        "node-level sample {node_sample} not smaller than flat {flat_sample}"
    );

    // And the histogramming phase gets cheaper in simulated time.
    let flat_hist = flat.report.metrics.phase(SimPhase::Histogramming).simulated_seconds
        + flat.report.metrics.phase(SimPhase::Sampling).simulated_seconds;
    let node_hist = node.report.metrics.phase(SimPhase::Histogramming).simulated_seconds
        + node.report.metrics.phase(SimPhase::Sampling).simulated_seconds;
    assert!(node_hist <= flat_hist * 1.1, "node {node_hist} vs flat {flat_hist}");
}

#[test]
fn node_level_respects_combined_balance_bounds() {
    let p = 64;
    let input = KeyDistribution::PowerLaw { gamma: 3.0 }.generate_per_rank(p, 1_500, 17);
    let mut machine = Machine::new(Topology::new(p, 16), CostModel::bluegene_like());
    let outcome = HssSorter::new(HssConfig::paper_cluster()).sort(&mut machine, input.clone());
    verify_global_sort(&input, &outcome.data).unwrap();
    // 2% across nodes combined with 5% within nodes: comfortably under 10%.
    assert!(outcome.report.satisfies(0.10), "imbalance {}", outcome.report.imbalance());
}

#[test]
fn duplicate_heavy_inputs_balance_only_with_tagging() {
    let p = 16;
    for dist in [KeyDistribution::AllEqual, KeyDistribution::FewDistinct { distinct: 4 }] {
        let input = dist.generate_per_rank(p, 1_000, 23);

        let mut plain_machine = Machine::flat(p);
        let plain = HssSorter::new(HssConfig { epsilon: EPS, ..HssConfig::default() })
            .sort(&mut plain_machine, input.clone());
        verify_global_sort(&input, &plain.data).unwrap();
        assert!(
            !plain.report.satisfies(EPS),
            "{}: untagged HSS unexpectedly balanced ({})",
            dist.name(),
            plain.report.imbalance()
        );

        let mut tagged_machine = Machine::flat(p);
        let tagged = HssSorter::new(
            HssConfig { epsilon: EPS, ..HssConfig::default() }.with_duplicate_tagging(),
        )
        .sort(&mut tagged_machine, input.clone());
        verify_global_sort(&input, &tagged.data).unwrap();
        assert!(
            tagged.report.satisfies(EPS),
            "{}: tagged HSS imbalance {}",
            dist.name(),
            tagged.report.imbalance()
        );
    }
}

#[test]
fn tagging_and_node_level_compose() {
    let p = 32;
    let input = KeyDistribution::FewDistinct { distinct: 7 }.generate_per_rank(p, 800, 31);
    let mut machine = Machine::new(Topology::new(p, 8), CostModel::bluegene_like());
    let outcome = HssSorter::new(
        HssConfig { epsilon: EPS, ..HssConfig::default() }
            .with_duplicate_tagging()
            .with_node_level(),
    )
    .sort(&mut machine, input.clone());
    verify_global_sort(&input, &outcome.data).unwrap();
    assert!(outcome.report.satisfies(0.15), "imbalance {}", outcome.report.imbalance());
}

#[test]
fn records_with_duplicate_keys_keep_payloads_under_tagging() {
    let p = 8;
    // Many records share keys; payloads must survive the tagged round trip.
    let input: Vec<Vec<Record>> = (0..p)
        .map(|r| {
            (0..500u32)
                .map(|i| Record { key: (i % 17) as u64, payload: (r as u32) << 16 | i })
                .collect()
        })
        .collect();
    let expected: usize = input.iter().map(|v| v.len()).sum();
    let mut machine = Machine::flat(p);
    let outcome =
        HssSorter::new(HssConfig { epsilon: EPS, ..HssConfig::default() }.with_duplicate_tagging())
            .sort(&mut machine, input.clone());
    verify_global_sort(&input, &outcome.data).unwrap();
    assert!(outcome.report.satisfies(EPS), "imbalance {}", outcome.report.imbalance());
    // No payload lost or duplicated.
    let mut seen: Vec<u32> = outcome.data.iter().flatten().map(|r| r.payload).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), expected);
}
