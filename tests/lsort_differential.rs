//! Radix-vs-comparison local-sort differential suite.
//!
//! The in-place MSD radix sort (`LocalSortAlgo::Radix`, the default) must
//! be indistinguishable from `sort_unstable` (`LocalSortAlgo::Comparison`)
//! in everything but host-side speed.  For every sorter × key distribution
//! × exchange engine × sync model, at 1 and 4 pool threads:
//!
//! * **bitwise-identical per-rank output** — both algorithms realise the
//!   same total order, and equal items are indistinguishable, so the
//!   sorted arrays must match exactly;
//! * **identical `deterministic_signature()` outside the local-sort
//!   phases** — the sorted data drives everything downstream (samples,
//!   probes, splitters, exchange, merge), so sampling, histogramming,
//!   broadcast, exchange and merge charges must agree bit for bit.  The
//!   `local_sort` / `node_local_sort` entries legitimately differ: the
//!   sim charges `Work::sort` vs `Work::radix_sort` by design;
//! * **thread-count-independent signatures** — for each algorithm the
//!   1-thread and 4-thread runs must produce identical signatures *and*
//!   data (the radix blocks are disjoint sub-slices, so the parallel
//!   driver is deterministic).
//!
//! A proptest block additionally fuzzes the radix sorter itself against
//! `sort_unstable` on arbitrary inputs (duplicates, already-sorted,
//! reverse, all-equal, empty, single-element).

use hss_repro::baselines::{
    bitonic_sort_with, histogram_sort_with_engine, over_partitioning_sort_with_engine,
    radix_partition_sort_with_engine, sample_sort_with_engine, HistogramSortConfig,
    OverPartitioningConfig, RadixConfig, SampleSortConfig,
};
use hss_repro::lsort::{par_radix_sort, radix_sort};
use hss_repro::partition::{verify_global_sort, ExchangeEngine};
use hss_repro::prelude::*;

use proptest::prelude::*;

const RANKS: usize = 8;
const KEYS_PER_RANK: usize = 300;
const SEED: u64 = 2019;

/// Per-phase signature entries that may differ between the two local-sort
/// algorithms: the phases where the modelled local-sort cost itself lives.
const LOCAL_PHASES: [&str; 2] = ["local_sort", "node_local_sort"];

type Signature = Vec<(&'static str, u64, u64, u64, u64, u64, u64)>;

fn distributions() -> [KeyDistribution; 3] {
    [
        KeyDistribution::Uniform,
        KeyDistribution::PowerLaw { gamma: 4.0 },
        KeyDistribution::FewDistinct { distinct: 5 },
    ]
}

fn non_local(sig: &Signature) -> Signature {
    sig.iter().filter(|e| !LOCAL_PHASES.contains(&e.0)).copied().collect()
}

fn local(sig: &Signature) -> Signature {
    sig.iter().filter(|e| LOCAL_PHASES.contains(&e.0)).copied().collect()
}

/// Run `sorter` with both local-sort algorithms, each at 1 and 4 pool
/// threads, on identical fresh machines, and assert the differential
/// contract described in the module docs.
fn assert_algos_agree<T, F>(label: &str, sync: SyncModel, sorter: F)
where
    T: PartialEq + std::fmt::Debug + Send,
    F: Fn(&mut Machine, LocalSortAlgo) -> Vec<Vec<T>> + Sync,
{
    let mut runs: Vec<(LocalSortAlgo, usize, Vec<Vec<T>>, Signature)> = Vec::new();
    for algo in [LocalSortAlgo::Comparison, LocalSortAlgo::Radix] {
        for threads in [1usize, 4] {
            let pool =
                rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("test pool");
            let (out, sig) = pool.install(|| {
                let mut machine = Machine::flat(RANKS).with_sync_model(sync);
                let out = sorter(&mut machine, algo);
                (out, machine.metrics().deterministic_signature())
            });
            runs.push((algo, threads, out, sig));
        }
    }
    let (ref_algo, _, ref_data, ref_sig) = &runs[0];
    for (algo, threads, data, sig) in &runs[1..] {
        assert_eq!(
            ref_data, data,
            "{label}: data diverged between {ref_algo:?}/1 thread and {algo:?}/{threads} threads"
        );
        assert_eq!(
            non_local(ref_sig),
            non_local(sig),
            "{label}: non-local-sort signature diverged between \
             {ref_algo:?}/1 thread and {algo:?}/{threads} threads"
        );
        if algo == ref_algo {
            // Same algorithm at different thread counts: the *entire*
            // signature must match, local-sort phases included.
            assert_eq!(
                ref_sig, sig,
                "{label}: {algo:?} signature changed with pool threads ({threads})"
            );
        }
    }
    // Radix and comparison are modelled differently, so whenever a local
    // sort phase was charged at all, the local entries must differ.
    let radix_run = runs.iter().find(|(a, ..)| *a == LocalSortAlgo::Radix).unwrap();
    if !local(ref_sig).is_empty() {
        assert_ne!(
            local(ref_sig),
            local(&radix_run.3),
            "{label}: local-sort charges unexpectedly identical across algorithms"
        );
    }
}

fn sync_models() -> [SyncModel; 2] {
    [SyncModel::Bsp, SyncModel::Overlapped]
}

#[test]
fn hss_radix_and_comparison_agree() {
    for sync in sync_models() {
        for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
            for dist in distributions() {
                let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
                let label = format!("hss/{:?}/{:?}/{}", sync, engine, dist.name());
                assert_algos_agree(&label, sync, |machine, algo| {
                    let cfg = HssConfig::default()
                        .with_seed(SEED)
                        .with_exchange_engine(engine)
                        .with_local_sort(algo);
                    let out = HssSorter::new(cfg).sort(machine, input.clone());
                    verify_global_sort(&input, &out.data).unwrap();
                    assert_eq!(out.report.local_sort, algo.name());
                    out.data
                });
            }
        }
    }
}

#[test]
fn hss_with_duplicate_tagging_agrees() {
    // Tagged items radix-sort by their (key, pe, index) digit string; the
    // FewDistinct input makes the tag bytes do the real work.
    let input =
        KeyDistribution::FewDistinct { distinct: 3 }.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
    for sync in sync_models() {
        assert_algos_agree(&format!("hss-tagged/{sync:?}"), sync, |machine, algo| {
            let cfg =
                HssConfig::default().with_seed(SEED).with_duplicate_tagging().with_local_sort(algo);
            HssSorter::new(cfg).sort(machine, input.clone()).data
        });
    }
}

#[test]
fn hss_records_agree() {
    // Key + payload records: the payload participates in the order (and in
    // the radix digit string).
    let input = KeyDistribution::Uniform.generate_records_per_rank(RANKS, KEYS_PER_RANK, SEED);
    for sync in sync_models() {
        assert_algos_agree(&format!("hss-records/{sync:?}"), sync, |machine, algo| {
            let cfg = HssConfig::default().with_seed(SEED).with_local_sort(algo);
            HssSorter::new(cfg).sort(machine, input.clone()).data
        });
    }
}

#[test]
fn sample_sort_radix_and_comparison_agree() {
    for sync in sync_models() {
        for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
            for dist in distributions() {
                let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
                for (name, base) in [
                    ("regular", SampleSortConfig::regular(0.2)),
                    ("random", SampleSortConfig::random(0.2)),
                ] {
                    let label = format!("sample-{name}/{:?}/{:?}/{}", sync, engine, dist.name());
                    assert_algos_agree(&label, sync, |machine, algo| {
                        let cfg = SampleSortConfig { local_sort: algo, ..base };
                        sample_sort_with_engine(machine, &cfg, input.clone(), engine).0
                    });
                }
            }
        }
    }
}

#[test]
fn histogram_sort_radix_and_comparison_agree() {
    for sync in sync_models() {
        for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
            for dist in distributions() {
                let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
                let label = format!("histogram/{:?}/{:?}/{}", sync, engine, dist.name());
                assert_algos_agree(&label, sync, |machine, algo| {
                    let mut cfg = HistogramSortConfig::new(0.1, RANKS);
                    cfg.local_sort = algo;
                    histogram_sort_with_engine(machine, &cfg, input.clone(), engine).0
                });
            }
        }
    }
}

#[test]
fn over_partitioning_radix_and_comparison_agree() {
    for sync in sync_models() {
        for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
            for dist in distributions() {
                let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
                let label = format!("overpartition/{:?}/{:?}/{}", sync, engine, dist.name());
                assert_algos_agree(&label, sync, |machine, algo| {
                    let mut cfg = OverPartitioningConfig::recommended(RANKS);
                    cfg.local_sort = algo;
                    over_partitioning_sort_with_engine(machine, &cfg, input.clone(), engine).0
                });
            }
        }
    }
}

#[test]
fn radix_partition_radix_and_comparison_agree() {
    for sync in sync_models() {
        for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
            for dist in distributions() {
                let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
                let label = format!("radix-partition/{:?}/{:?}/{}", sync, engine, dist.name());
                assert_algos_agree(&label, sync, |machine, algo| {
                    let mut cfg = RadixConfig::recommended(RANKS);
                    cfg.local_sort = algo;
                    radix_partition_sort_with_engine(machine, &cfg, input.clone(), engine).0
                });
            }
        }
    }
}

#[test]
fn bitonic_radix_and_comparison_agree() {
    for sync in sync_models() {
        for engine in [ExchangeEngine::Flat, ExchangeEngine::Nested] {
            for dist in distributions() {
                let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
                let label = format!("bitonic/{:?}/{:?}/{}", sync, engine, dist.name());
                assert_algos_agree(&label, sync, |machine, algo| {
                    bitonic_sort_with(machine, input.clone(), engine, algo).0
                });
            }
        }
    }
}

#[test]
fn node_level_radix_and_comparison_agree() {
    // Node-level partitioning (within-node sample sort included); only
    // under Bsp — node-level is rejected under Overlapped.
    let topo = Topology::new(16, 4);
    for dist in distributions() {
        let input = dist.generate_per_rank(16, KEYS_PER_RANK, SEED);
        let mut runs = Vec::new();
        for algo in [LocalSortAlgo::Comparison, LocalSortAlgo::Radix] {
            let mut machine = Machine::new(topo, CostModel::bluegene_like());
            let cfg = HssConfig::paper_cluster().with_seed(SEED).with_local_sort(algo);
            let out = HssSorter::new(cfg).sort(&mut machine, input.clone());
            runs.push((out.data, machine.metrics().deterministic_signature()));
        }
        assert_eq!(runs[0].0, runs[1].0, "node-level/{}: data diverged", dist.name());
        assert_eq!(
            non_local(&runs[0].1),
            non_local(&runs[1].1),
            "node-level/{}: non-local signature diverged",
            dist.name()
        );
    }
}

// ---------------------------------------------------------------------------
// Property-based coverage of the radix sorter itself
// ---------------------------------------------------------------------------

/// `radix_sort` must match `sort_unstable` exactly.
fn assert_radix_matches(mut v: Vec<u64>) {
    let mut expect = v.clone();
    expect.sort_unstable();
    radix_sort(&mut v);
    assert_eq!(v, expect);
}

proptest! {
    #[test]
    fn radix_sorts_arbitrary_u64(v in proptest::collection::vec(any::<u64>(), 0..600)) {
        assert_radix_matches(v);
    }

    #[test]
    fn radix_sorts_duplicate_heavy(v in proptest::collection::vec(0u64..8, 0..600)) {
        assert_radix_matches(v);
    }

    #[test]
    fn radix_sorts_narrow_band(v in proptest::collection::vec(1_000_000u64..1_000_256, 0..600)) {
        // All keys share the top seven bytes: exercises prefix skipping.
        assert_radix_matches(v);
    }

    #[test]
    fn radix_sorts_presorted_and_reversed(mut v in proptest::collection::vec(any::<u64>(), 0..400)) {
        v.sort_unstable();
        assert_radix_matches(v.clone());
        v.reverse();
        assert_radix_matches(v);
    }

    #[test]
    fn par_radix_matches_sequential(v in proptest::collection::vec(any::<u64>(), 0..600)) {
        let mut seq = v.clone();
        radix_sort(&mut seq);
        let mut par = v.clone();
        par_radix_sort(&mut par);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn radix_sorts_records(
        v in proptest::collection::vec((0u64..16, any::<u32>()), 0..400)
    ) {
        // Heavy key duplication forces the payload bytes to decide.
        let mut recs: Vec<Record> =
            v.into_iter().map(|(key, payload)| Record { key, payload }).collect();
        let mut expect = recs.clone();
        expect.sort_unstable();
        radix_sort(&mut recs);
        prop_assert_eq!(recs, expect);
    }
}

#[test]
fn radix_sorts_explicit_edge_cases() {
    assert_radix_matches(vec![]);
    assert_radix_matches(vec![42]);
    assert_radix_matches(vec![7; 10_000]);
    assert_radix_matches((0..10_000).collect());
    assert_radix_matches((0..10_000).rev().collect());
    assert_radix_matches(vec![u64::MAX, 0, u64::MAX, 0, 1]);
}
