//! Flat-vs-nested exchange differential suite.
//!
//! The flat counts/displacements exchange engine (`ExchangeEngine::Flat`,
//! the default) must be indistinguishable from the historical nested
//! `Vec<Vec<Vec<T>>>` engine in everything but host-side speed: for every
//! sorter × key distribution × exchange mode, both engines must produce
//! **bitwise-identical per-rank output** and an **identical
//! `deterministic_signature()`** (simulated seconds bit-for-bit, messages,
//! words, ops, supersteps per phase).
//!
//! Matrix: HSS (flat + node-level topologies), sample sort ×2 sampling
//! methods, classic histogram sort, over-partitioning, radix, bitonic — on
//! a rank-level (flat) topology and a multi-core topology whose exchanges
//! run node-combined.

use hss_repro::baselines::{
    bitonic_sort_with_engine, histogram_sort_with_engine, over_partitioning_sort_with_engine,
    radix_partition_sort_with_engine, sample_sort_with_engine, HistogramSortConfig,
    OverPartitioningConfig, RadixConfig, SampleSortConfig,
};
use hss_repro::partition::{verify_global_sort, ExchangeEngine};
use hss_repro::prelude::*;

const RANKS: usize = 8;
const KEYS_PER_RANK: usize = 300;
const SEED: u64 = 2019;

/// The distribution regimes of the matrix: uniform, heavy skew,
/// duplicate-heavy.
fn distributions() -> [KeyDistribution; 3] {
    [
        KeyDistribution::Uniform,
        KeyDistribution::PowerLaw { gamma: 4.0 },
        KeyDistribution::FewDistinct { distinct: 5 },
    ]
}

/// Rank-level and node-combined machines (the latter's cores-per-node > 1
/// routes every splitter-based exchange through the node-combined path).
fn topologies() -> [Topology; 2] {
    [Topology::flat(RANKS), Topology::new(RANKS, 4)]
}

/// Run `sorter` under both engines on identical fresh machines and assert
/// bitwise-identical data and cost signatures.
fn assert_engines_agree<T, F>(label: &str, topo: Topology, sorter: F)
where
    T: PartialEq + std::fmt::Debug,
    F: Fn(&mut Machine, ExchangeEngine) -> Vec<Vec<T>>,
{
    let mut machine_flat = Machine::new(topo, CostModel::bluegene_like());
    let out_flat = sorter(&mut machine_flat, ExchangeEngine::Flat);
    let mut machine_nested = Machine::new(topo, CostModel::bluegene_like());
    let out_nested = sorter(&mut machine_nested, ExchangeEngine::Nested);
    assert_eq!(out_flat, out_nested, "{label}: per-rank data diverged");
    assert_eq!(
        machine_flat.metrics().deterministic_signature(),
        machine_nested.metrics().deterministic_signature(),
        "{label}: cost signature diverged"
    );
}

#[test]
fn hss_flat_and_nested_engines_agree() {
    for topo in topologies() {
        for dist in distributions() {
            let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
            let label = format!("hss/{}/{} cores", dist.name(), topo.cores_per_node());
            assert_engines_agree(&label, topo, |machine, engine| {
                let cfg = HssConfig::default().with_seed(SEED).with_exchange_engine(engine);
                let out = HssSorter::new(cfg).sort(machine, input.clone());
                verify_global_sort(&input, &out.data).unwrap();
                out.data
            });
        }
    }
}

#[test]
fn hss_node_level_flat_and_nested_engines_agree() {
    // paper_cluster enables node-level partitioning; on the multicore
    // topology the exchange is node-combined and the within-node re-split
    // reads the flat receive buffer as slices.
    let topo = Topology::new(16, 4);
    for dist in distributions() {
        let input = dist.generate_per_rank(16, KEYS_PER_RANK, SEED);
        let label = format!("hss-node-level/{}", dist.name());
        assert_engines_agree(&label, topo, |machine, engine| {
            let cfg = HssConfig::paper_cluster().with_seed(SEED).with_exchange_engine(engine);
            HssSorter::new(cfg).sort(machine, input.clone()).data
        });
    }
}

#[test]
fn sample_sort_engines_agree() {
    for topo in topologies() {
        for dist in distributions() {
            let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
            for (name, cfg) in [
                ("regular", SampleSortConfig::regular(0.2)),
                ("random", SampleSortConfig::random(0.2)),
            ] {
                let label = format!("sample-sort-{name}/{}", dist.name());
                assert_engines_agree(&label, topo, |machine, engine| {
                    sample_sort_with_engine(machine, &cfg, input.clone(), engine).0
                });
            }
        }
    }
}

#[test]
fn histogram_sort_engines_agree() {
    for topo in topologies() {
        for dist in distributions() {
            let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
            let cfg = HistogramSortConfig::new(0.1, RANKS);
            let label = format!("histogram-sort/{}", dist.name());
            assert_engines_agree(&label, topo, |machine, engine| {
                histogram_sort_with_engine(machine, &cfg, input.clone(), engine).0
            });
        }
    }
}

#[test]
fn over_partitioning_engines_agree() {
    for topo in topologies() {
        for dist in distributions() {
            let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
            let cfg = OverPartitioningConfig::recommended(RANKS);
            let label = format!("over-partitioning/{}", dist.name());
            assert_engines_agree(&label, topo, |machine, engine| {
                over_partitioning_sort_with_engine(machine, &cfg, input.clone(), engine).0
            });
        }
    }
}

#[test]
fn radix_engines_agree() {
    for topo in topologies() {
        for dist in distributions() {
            let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
            let cfg = RadixConfig::recommended(RANKS);
            let label = format!("radix/{}", dist.name());
            assert_engines_agree(&label, topo, |machine, engine| {
                radix_partition_sort_with_engine(machine, &cfg, input.clone(), engine).0
            });
        }
    }
}

#[test]
fn bitonic_engines_agree() {
    for topo in topologies() {
        for dist in distributions() {
            let input = dist.generate_per_rank(RANKS, KEYS_PER_RANK, SEED);
            let label = format!("bitonic/{}", dist.name());
            assert_engines_agree(&label, topo, |machine, engine| {
                bitonic_sort_with_engine(machine, input.clone(), engine).0
            });
        }
    }
}

#[test]
fn record_payloads_survive_both_engines_identically() {
    // Key + payload records exercise the element-move paths (the flat
    // engine must keep payloads attached through scatter and loser-tree
    // merge exactly like the nested engine does).
    let input = KeyDistribution::Uniform.generate_records_per_rank(RANKS, KEYS_PER_RANK, SEED);
    for topo in topologies() {
        assert_engines_agree("hss-records", topo, |machine, engine| {
            let cfg = HssConfig::default().with_seed(SEED).with_exchange_engine(engine);
            HssSorter::new(cfg).sort(machine, input.clone()).data
        });
    }
}
