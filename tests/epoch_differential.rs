//! Epoch-service differential suite: [`SortService`] must never invent a
//! different sort than the one-shot [`HssSorter`] it is built from.
//!
//! Oracles:
//!
//! 1. **Epoch 0 is cold (bitwise).**  The first sealed epoch runs the exact
//!    pipeline of `HssSorter::sort` on a plain BSP machine, so its per-rank
//!    keyspace, its cost signature and its makespan must all match a cold
//!    sorter run bit for bit.
//! 2. **Warm epochs re-sort, never approximate.**  A warm start may change
//!    *how many rounds* splitter determination takes (and hence where the
//!    splitters land), but the sealed keyspace must still be a permutation-
//!    free re-sort of everything ingested: flattening it must equal the
//!    cold sorter's flattened output on the accumulated multiset, across a
//!    drift × processor-count matrix.
//! 3. **Replay determinism.**  The same seed and ingest stream must replay
//!    to bitwise-identical keyspaces, reports and cost signatures.
//! 4. **Sync-model coverage.**  The cold reference is itself pinned across
//!    sync models: flattened output under `SyncModel::Overlapped` equals
//!    the service's (BSP) flattened keyspace.

use hss_repro::prelude::*;
use hss_repro::service::DriftingWorkload;

fn service_config(seed: u64) -> ServiceConfig {
    let hss = HssConfig::default()
        .with_epsilon(0.02)
        .with_schedule(RoundSchedule::ConstantOversampling { oversampling: 4.0, max_rounds: 32 })
        .with_seed(seed);
    ServiceConfig::new(hss).expect("valid service config")
}

fn flatten(per_rank: &[Vec<u64>]) -> Vec<u64> {
    per_rank.iter().flatten().copied().collect()
}

#[test]
fn epoch_zero_is_bitwise_identical_to_the_cold_sorter() {
    for p in [8, 32] {
        let config = service_config(17);
        let input = KeyDistribution::Uniform.generate_per_rank(p, 1_500, 99);

        let mut service: SortService<u64> = SortService::new(p, config.clone());
        service.ingest_per_rank(input.clone());
        service.seal_epoch();

        let mut machine = Machine::flat(p);
        let cold = HssSorter::new(config.hss).sort(&mut machine, input);

        assert_eq!(service.keyspace(), cold.data.as_slice(), "p={p}: per-rank data differs");
        let report = &service.history()[0];
        assert_eq!(
            report.metrics.deterministic_signature(),
            cold.report.metrics.deterministic_signature(),
            "p={p}: cost signature differs"
        );
        assert_eq!(
            report.makespan_seconds.to_bits(),
            cold.report.makespan_seconds.to_bits(),
            "p={p}: makespan differs"
        );
        assert_eq!(
            report.splitter_rounds,
            cold.report.splitters.as_ref().unwrap().rounds_executed()
        );
    }
}

#[test]
fn warm_epochs_flatten_to_the_cold_resort_of_everything_ingested() {
    for p in [8, 16] {
        for drift in [0.0, 0.5, 1.0] {
            let config = service_config(23);
            let mut service: SortService<u64> = SortService::new(p, config.clone());
            let mut workload = DriftingWorkload::new(p, 600, drift, 23);
            let mut accumulated: Vec<Vec<u64>> = vec![Vec::new(); p];

            for epoch in 0..3 {
                let batch = workload.next_batch();
                for (acc, fresh) in accumulated.iter_mut().zip(batch.iter()) {
                    acc.extend_from_slice(fresh);
                }
                service.ingest_per_rank(batch);
                let report = service.seal_epoch().clone();
                assert_eq!(report.warm_started, epoch > 0, "p={p} drift={drift} epoch {epoch}");

                let mut machine = Machine::flat(p);
                let cold =
                    HssSorter::new(config.hss.clone()).sort(&mut machine, accumulated.clone());
                assert_eq!(
                    flatten(service.keyspace()),
                    flatten(&cold.data),
                    "p={p} drift={drift} epoch {epoch}: flattened output differs from cold re-sort"
                );
                assert!(report.load_balance.satisfies(config.hss.epsilon));
            }
        }
    }
}

#[test]
fn sealed_epochs_replay_deterministically() {
    let p = 16;
    let run = || {
        let mut service: SortService<u64> = SortService::new(p, service_config(31));
        let mut workload = DriftingWorkload::new(p, 500, 0.25, 31);
        for _ in 0..3 {
            service.ingest_per_rank(workload.next_batch());
            service.seal_epoch();
        }
        service
    };
    let (a, b) = (run(), run());
    assert_eq!(a.keyspace(), b.keyspace());
    for (ra, rb) in a.history().iter().zip(b.history()) {
        assert_eq!(ra.splitter_rounds, rb.splitter_rounds);
        assert_eq!(ra.carried_probes, rb.carried_probes);
        assert_eq!(ra.makespan_seconds.to_bits(), rb.makespan_seconds.to_bits());
        assert_eq!(ra.metrics.deterministic_signature(), rb.metrics.deterministic_signature());
    }
}

#[test]
fn cold_reference_holds_across_sync_models() {
    let p = 8;
    let config = service_config(43);
    let mut service: SortService<u64> = SortService::new(p, config.clone());
    let mut workload = DriftingWorkload::new(p, 700, 0.5, 43);
    let mut accumulated: Vec<Vec<u64>> = vec![Vec::new(); p];
    for _ in 0..2 {
        let batch = workload.next_batch();
        for (acc, fresh) in accumulated.iter_mut().zip(batch.iter()) {
            acc.extend_from_slice(fresh);
        }
        service.ingest_per_rank(batch);
        service.seal_epoch();
    }
    let mut overlapped = Machine::flat(p).with_sync_model(SyncModel::Overlapped);
    let cold = HssSorter::new(config.hss).sort(&mut overlapped, accumulated);
    assert_eq!(
        flatten(service.keyspace()),
        flatten(&cold.data),
        "overlapped cold sort disagrees with the sealed keyspace"
    );
}
