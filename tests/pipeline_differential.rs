//! Single-pass pipelined out-of-core differential suite: the pipelined
//! drain (`ExtSortPolicy::pipelined`) must be *bitwise indistinguishable*
//! from the materialize-then-exchange arm — and from the in-memory sorter —
//! in everything but disk traffic.
//!
//! * **Distributed level** — `sort_out_of_core` with `pipelined` vs without
//!   vs `HssSorter::sort`, across key distributions × memory caps × sync
//!   models × 1 and 4 rayon threads × `u64` and 100-byte `TeraRecord`
//!   payloads.  Identical per-rank output everywhere; deterministic
//!   simulator signature invariant to thread count and host I/O mode; and
//!   the pipelined arm strictly fewer measured scratch bytes *and* modelled
//!   disk words.
//! * **Proptest** — fuzzes the pull-based merge cursor against the
//!   file-based merge oracle (`sort_to_vec`) over chunk-boundary geometry,
//!   duplicate-heavy inputs, and empty/one-element runs, and checks staged
//!   `drain_source_below` cuts land exactly on `partition_point` boundaries
//!   (the invariant the pipelined exchange's bitwise identity rests on).

use hss_repro::extsort::{ExtSortConfig, ExternalSorter, IoMode, PlainRecord};
use hss_repro::keygen::{generate_tera_records_per_rank, Keyed, TeraRecord};
use hss_repro::lsort::RadixSortable;
use hss_repro::partition::{drain_source_below, drain_source_rest};
use hss_repro::prelude::*;

use proptest::collection::vec;
use proptest::prelude::*;

const SEED: u64 = 2019;

fn scratch_root() -> String {
    std::env::temp_dir().join("hss-pipeline-differential").to_string_lossy().into_owned()
}

fn policy(cap: usize, mode: IoMode) -> ExtSortPolicy {
    ExtSortPolicy::new(cap, scratch_root()).with_fan_in(2).with_io_mode(mode)
}

fn distributions() -> [KeyDistribution; 4] {
    [
        KeyDistribution::Uniform,
        KeyDistribution::PowerLaw { gamma: 4.0 },
        KeyDistribution::FewDistinct { distinct: 5 },
        KeyDistribution::Staggered,
    ]
}

/// One row of [`hss_sim::PhaseMetrics::deterministic_signature`].
type SignatureRow = (&'static str, u64, u64, u64, u64, u64, u64);

struct RunResult<T> {
    data: Vec<Vec<T>>,
    signature: Vec<SignatureRow>,
    disk_words: u64,
    scratch_bytes: u64,
    algorithm: String,
}

/// Run `sort_out_of_core` on a pool with `threads` rayon threads.
fn run_ooc<T>(
    input: &[Vec<T>],
    policy: ExtSortPolicy,
    sync: SyncModel,
    threads: usize,
) -> RunResult<T>
where
    T: Keyed + Ord + RadixSortable + PlainRecord + Send + Sync,
    T::K: RadixSortable,
{
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("test pool");
    pool.install(|| {
        let ranks = input.len();
        let mut machine = Machine::flat(ranks).with_sync_model(sync);
        let cfg = HssConfig::default().with_ext_sort(policy);
        let (outcome, ext) = HssSorter::new(cfg).sort_out_of_core(&mut machine, input.to_vec());
        assert!(ext.runs_formed > 0, "cap must force the external path");
        RunResult {
            data: outcome.data,
            signature: machine.metrics().deterministic_signature(),
            disk_words: machine.metrics().total_disk_words(),
            scratch_bytes: ext.disk_bytes(),
            algorithm: outcome.report.algorithm,
        }
    })
}

#[test]
fn pipelined_matches_materialized_across_dists_caps_models_and_threads() {
    let p = 8;
    let n = 600;
    for dist in distributions() {
        let input = dist.generate_per_rank(p, n, SEED);
        let mut m_ref = Machine::flat(p);
        let reference = HssSorter::default().sort(&mut m_ref, input.clone());

        for cap_div in [4usize, 12] {
            let cap = (n * std::mem::size_of::<u64>() / cap_div).max(std::mem::size_of::<u64>());
            for sync in [SyncModel::Bsp, SyncModel::Overlapped] {
                let label = format!("{} cap_div={cap_div} sync={}", dist.name(), sync.name());
                let mat = run_ooc(&input, policy(cap, IoMode::Overlapped), sync, 1);
                let pipe =
                    run_ooc(&input, policy(cap, IoMode::Overlapped).with_pipelined(), sync, 1);

                assert_eq!(mat.data, reference.data, "{label}: materialized vs in-memory");
                assert_eq!(pipe.data, reference.data, "{label}: pipelined vs in-memory");
                assert_eq!(pipe.algorithm, "hss-extsort-pipelined");
                // Traffic inequalities are asserted at realistic sizes in
                // `pipelined_beats_materialized_on_scratch_traffic`; at the
                // few hundred keys this matrix uses, runs are smaller than
                // one fence stride and probe I/O rivals the data itself.
            }
        }

        // Thread-count and host I/O-mode invariance (Overlapped sync, the
        // arm with the most asynchrony to get wrong).
        let cap = n * std::mem::size_of::<u64>() / 4;
        let pipelined = |mode: IoMode| policy(cap, mode).with_pipelined();
        let p1 = run_ooc(&input, pipelined(IoMode::Overlapped), SyncModel::Overlapped, 1);
        let p4 = run_ooc(&input, pipelined(IoMode::Overlapped), SyncModel::Overlapped, 4);
        let ps = run_ooc(&input, pipelined(IoMode::Synchronous), SyncModel::Overlapped, 1);
        assert_eq!(p1.data, p4.data, "{}: thread-count must not change output", dist.name());
        assert_eq!(p1.data, ps.data, "{}: host I/O mode must not change output", dist.name());
        assert_eq!(p1.signature, p4.signature, "{}: signature thread-invariant", dist.name());
        assert_eq!(
            p1.signature,
            ps.signature,
            "{}: host I/O scheduling must not change modelled cost",
            dist.name()
        );
        hss_repro::partition::verify_global_sort(&input, &p1.data).expect("global sort");
    }
}

#[test]
fn pipelined_matches_for_tera_records() {
    let p = 4;
    let n = 300;
    let s = std::mem::size_of::<TeraRecord>();
    assert_eq!(s, 100, "TeraRecord must be the 10-byte-key / 100-byte record");
    let input = generate_tera_records_per_rank(p, n, SEED);
    let mut m_ref = Machine::flat(p);
    let reference = HssSorter::default().sort(&mut m_ref, input.clone());

    let cap = n * s / 4;
    for sync in [SyncModel::Bsp, SyncModel::Overlapped] {
        let mat = run_ooc(&input, policy(cap, IoMode::Overlapped), sync, 1);
        let pipe = run_ooc(&input, policy(cap, IoMode::Overlapped).with_pipelined(), sync, 1);
        assert_eq!(mat.data, reference.data, "{}: materialized", sync.name());
        assert_eq!(pipe.data, reference.data, "{}: pipelined", sync.name());
    }
}

/// The point of the pipeline: strictly fewer scratch bytes (measured) and
/// disk words (modelled) than materialize-then-exchange.  Run at sizes
/// where a fence stride (~512 B) is a small fraction of each run — the
/// regime the tier exists for; at a few hundred keys per rank, splitter
/// probes rival the data and the inequality is meaningless.
#[test]
fn pipelined_beats_materialized_on_scratch_traffic() {
    // u64 keys, both sync models.
    let (p, n) = (4, 20_000);
    let input = KeyDistribution::Uniform.generate_per_rank(p, n, SEED);
    let cap = n * std::mem::size_of::<u64>() / 4;
    for sync in [SyncModel::Bsp, SyncModel::Overlapped] {
        let mat = run_ooc(&input, policy(cap, IoMode::Overlapped), sync, 1);
        let pipe = run_ooc(&input, policy(cap, IoMode::Overlapped).with_pipelined(), sync, 1);
        assert_eq!(mat.data, pipe.data, "u64 {}: outputs must match", sync.name());
        assert!(
            pipe.scratch_bytes < mat.scratch_bytes,
            "u64 {}: pipelined scratch {} !< materialized {}",
            sync.name(),
            pipe.scratch_bytes,
            mat.scratch_bytes
        );
        assert!(
            pipe.disk_words < mat.disk_words,
            "u64 {}: pipelined disk words {} !< materialized {}",
            sync.name(),
            pipe.disk_words,
            mat.disk_words
        );
    }

    // 100-byte terasort records: wide payloads shift every byte count but
    // not the inequality.
    let (p, n) = (4, 20_000);
    let s = std::mem::size_of::<TeraRecord>();
    let input = generate_tera_records_per_rank(p, n, SEED);
    let cap = n * s / 4;
    let sync = SyncModel::Overlapped;
    let mat = run_ooc(&input, policy(cap, IoMode::Overlapped), sync, 1);
    let pipe = run_ooc(&input, policy(cap, IoMode::Overlapped).with_pipelined(), sync, 1);
    assert_eq!(mat.data, pipe.data, "tera: outputs must match");
    assert!(
        pipe.scratch_bytes < mat.scratch_bytes,
        "tera: pipelined scratch {} !< materialized {}",
        pipe.scratch_bytes,
        mat.scratch_bytes
    );
    assert!(
        pipe.disk_words < mat.disk_words,
        "tera: pipelined disk words {} !< materialized {}",
        pipe.disk_words,
        mat.disk_words
    );
}

#[test]
fn pipelined_auto_tune_and_pinned_depths_agree_bitwise() {
    let p = 4;
    let n = 500;
    let input = KeyDistribution::PowerLaw { gamma: 4.0 }.generate_per_rank(p, n, SEED);
    let cap = n * std::mem::size_of::<u64>() / 6;
    let auto =
        run_ooc(&input, policy(cap, IoMode::Overlapped).with_pipelined(), SyncModel::Overlapped, 1);
    for depth in [2usize, 4, 16] {
        let pinned = run_ooc(
            &input,
            policy(cap, IoMode::Overlapped).with_pipelined().with_prefetch_depth(depth),
            SyncModel::Overlapped,
            1,
        );
        assert_eq!(auto.data, pinned.data, "depth {depth} must not change output");
    }
}

/// Cases per property, overridable via `PROPTEST_CASES` (repo convention).
fn configured_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(24)
}

fn ext_cfg(chunk_elems: usize, fan_in: usize) -> ExtSortConfig {
    ExtSortConfig::new(2 * chunk_elems * std::mem::size_of::<u64>(), scratch_root())
        .with_fan_in(fan_in)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: configured_cases(), ..ProptestConfig::default() })]

    /// The pull-based cursor, drained to exhaustion, must emit exactly the
    /// sequence the file-based merge (`sort_to_vec`) materializes — over
    /// arbitrary chunk geometry (empty input, one run, runs ≫ fan-in
    /// forcing reduction passes) and both I/O modes.
    #[test]
    fn cursor_drain_matches_file_merge_oracle(
        input in vec(any::<u64>(), 0..400),
        chunk_elems in 1usize..48,
        fan_in in 2usize..6,
        depth in 2usize..5,
    ) {
        let oracle = ExternalSorter::new(ext_cfg(chunk_elems, fan_in))
            .sort_to_vec(input.iter().copied())
            .unwrap()
            .0;
        for mode in [IoMode::Synchronous, IoMode::Overlapped] {
            let sorter = ExternalSorter::new(
                ext_cfg(chunk_elems, fan_in).with_io_mode(mode).with_prefetch_depth(depth),
            );
            let runs = sorter.form_runs_only(input.iter().copied()).unwrap();
            let mut cursor = runs.into_cursor().unwrap();
            let mut got = Vec::with_capacity(input.len());
            while let Some(x) = cursor.next() {
                got.push(x);
            }
            prop_assert_eq!(&got, &oracle, "mode={}", mode.name());
            prop_assert_eq!(cursor.emitted() as usize, input.len());
            cursor.finish().unwrap();
        }
    }

    /// Duplicate-heavy keys: run boundaries land inside giant equal
    /// ranges, and the cursor's loser tree must reproduce the canonical
    /// order through its lower-run-index tie-break.
    #[test]
    fn duplicate_heavy_cursor_drains_identically(
        input in vec(0u64..8, 0..600),
        chunk_elems in 1usize..32,
    ) {
        let mut expected = input.clone();
        expected.sort_unstable();
        let runs = ExternalSorter::new(ext_cfg(chunk_elems, 2))
            .form_runs_only(input.iter().copied())
            .unwrap();
        let mut cursor = runs.into_cursor().unwrap();
        let mut got = Vec::new();
        while let Some(x) = cursor.next() {
            got.push(x);
        }
        prop_assert_eq!(got, expected);
        cursor.finish().unwrap();
    }

    /// Staged drains must cut exactly where `partition_point(key < bound)`
    /// cuts the materialized sorted array — including empty buckets from
    /// repeated bounds and a bound below the minimum — since this is the
    /// boundary the pipelined exchange seals buckets on.
    #[test]
    fn staged_cursor_drain_cuts_match_partition_points(
        input in vec(0u64..64, 0..500),
        chunk_elems in 1usize..32,
        mut bounds in vec(0u64..64, 0..6),
    ) {
        bounds.sort_unstable();
        let mut expected = input.clone();
        expected.sort_unstable();
        let runs = ExternalSorter::new(ext_cfg(chunk_elems, 2))
            .form_runs_only(input.iter().copied())
            .unwrap();
        let mut cursor = runs.into_cursor().unwrap();
        let mut pos = 0usize;
        for &b in &bounds {
            let mut buf = Vec::new();
            drain_source_below(&mut cursor, b, &mut buf);
            let cut = expected.partition_point(|&x| x < b);
            prop_assert_eq!(&buf[..], &expected[pos..cut], "bound {}", b);
            pos = cut;
        }
        let mut rest = Vec::new();
        drain_source_rest(&mut cursor, &mut rest);
        prop_assert_eq!(&rest[..], &expected[pos..]);
        cursor.finish().unwrap();
    }
}
