//! Integration tests for the *scaling shapes* the evaluation section relies
//! on: how simulated per-phase costs, message counts and sample volumes move
//! as the processor count grows.  These are the claims behind Figures 4.1,
//! 6.1 and 6.2, checked at a small executed scale.

use hss_repro::analysis::Algorithm;
use hss_repro::baselines::{BitonicSorter, SampleSortConfig};
use hss_repro::prelude::*;
use hss_repro::sim::Phase as SimPhase;

fn run_hss(p: usize, keys_per_rank: usize, cores_per_node: usize) -> hss_repro::core::SortReport {
    let input = KeyDistribution::Uniform.generate_per_rank(p, keys_per_rank, 7);
    let mut machine = Machine::new(Topology::new(p, cores_per_node), CostModel::bluegene_like());
    let config = if cores_per_node > 1 {
        HssConfig::paper_cluster()
    } else {
        HssConfig { epsilon: 0.05, ..HssConfig::default() }
    };
    HssSorter::new(config).sort(&mut machine, input).report
}

#[test]
fn weak_scaling_local_sort_is_flat_and_exchange_grows() {
    // Figure 6.1's shape at a tiny executed scale: under weak scaling the
    // local-sort time stays constant while the exchange (latency-dominated
    // at this size) grows with p.
    let keys = 2_000;
    let small = run_hss(64, keys, 16);
    let large = run_hss(256, keys, 16);
    let ls_small = small.metrics.phase(SimPhase::LocalSort).simulated_seconds;
    let ls_large = large.metrics.phase(SimPhase::LocalSort).simulated_seconds;
    assert!((ls_small - ls_large).abs() / ls_small < 0.05, "{ls_small} vs {ls_large}");
    let ex_small = small.metrics.phase(SimPhase::DataExchange).simulated_seconds;
    let ex_large = large.metrics.phase(SimPhase::DataExchange).simulated_seconds;
    assert!(ex_large > ex_small, "exchange did not grow: {ex_small} -> {ex_large}");
}

#[test]
fn histogramming_stays_a_minor_fraction_as_p_grows() {
    for p in [64usize, 128, 256] {
        let report = run_hss(p, 4_000, 16);
        let groups = report.metrics.figure_6_1_breakdown();
        let hist = groups.get("histogramming").copied().unwrap_or(0.0);
        let total: f64 = groups.values().sum();
        assert!(
            hist < 0.5 * total,
            "p = {p}: histogramming {hist} is not a minor fraction of {total}"
        );
    }
}

#[test]
fn hss_sample_volume_grows_much_slower_than_regular_sampling() {
    // The Figure 4.1 claim, measured: quadruple p and compare how the
    // gathered sample grows for HSS vs sample sort with regular sampling.
    let keys = 1_000;
    let eps = 0.05;
    let measure = |p: usize| -> (usize, usize) {
        let input = KeyDistribution::Uniform.generate_per_rank(p, keys, 3);
        let mut m1 = Machine::flat(p);
        let hss = HssSorter::new(HssConfig { epsilon: eps, ..HssConfig::default() })
            .sort(&mut m1, input.clone());
        let mut m2 = Machine::flat(p);
        let reg =
            SampleSortConfig::regular(eps).run(&mut m2, SortRequest::new(input)).unwrap().report;
        (
            hss.report.splitters.as_ref().unwrap().total_sample_size,
            reg.splitters.as_ref().unwrap().total_sample_size,
        )
    };
    let (hss_small, reg_small) = measure(16);
    let (hss_large, reg_large) = measure(64);
    let hss_growth = hss_large as f64 / hss_small as f64;
    let reg_growth = reg_large as f64 / reg_small as f64;
    // Regular sampling grows ~quadratically (16x for 4x p), HSS ~linearly.
    assert!(reg_growth > 8.0, "regular sampling growth only {reg_growth}");
    assert!(hss_growth < reg_growth / 1.5, "HSS growth {hss_growth} vs regular {reg_growth}");
    // And at equal p the HSS sample is far smaller.
    assert!(hss_large * 10 < reg_large);
}

#[test]
fn node_combining_reduces_exchange_messages_quadratically_in_cores() {
    // §6.1.1: combining messages per node pair divides the message count by
    // roughly (cores per node)^2.
    let p = 64;
    let keys = 500;
    let input = KeyDistribution::Uniform.generate_per_rank(p, keys, 5);

    let mut flat = Machine::new(Topology::flat(p), CostModel::bluegene_like());
    let _ = HssSorter::new(HssConfig { epsilon: 0.05, ..HssConfig::default() })
        .sort(&mut flat, input.clone());
    let flat_msgs = flat.metrics().phase(SimPhase::DataExchange).messages;

    let mut node = Machine::new(Topology::new(p, 8), CostModel::bluegene_like());
    let _ = HssSorter::new(HssConfig { epsilon: 0.05, ..HssConfig::default() }.with_node_level())
        .sort(&mut node, input);
    let node_msgs = node.metrics().phase(SimPhase::DataExchange).messages;

    assert!(flat_msgs >= (p * (p - 1) / 2) as u64, "flat exchange only {flat_msgs} messages");
    assert!(node_msgs <= (8 * 7) as u64, "node-combined exchange sent {node_msgs} messages");
    assert!(flat_msgs / node_msgs.max(1) >= 16, "reduction factor too small");
}

#[test]
fn bitonic_data_movement_grows_with_log_squared_p() {
    // §4.2: merge-based sorts move every key Θ(log² p) times, splitter-based
    // sorts move it once; the gap widens with p.
    let keys = 500;
    let words_moved = |p: usize| -> (u64, u64) {
        let input = KeyDistribution::Uniform.generate_per_rank(p, keys, 9);
        let mut m1 = Machine::flat(p);
        let _ = BitonicSorter.run(&mut m1, SortRequest::new(input.clone())).unwrap();
        let bitonic_words = m1.metrics().phase(SimPhase::DataExchange).comm_words;
        let mut m2 = Machine::flat(p);
        let _ =
            HssSorter::new(HssConfig { epsilon: 0.1, ..HssConfig::default() }).sort(&mut m2, input);
        let hss_words = m2.metrics().phase(SimPhase::DataExchange).comm_words;
        (bitonic_words, hss_words)
    };
    let (bitonic_8, hss_8) = words_moved(8);
    let (bitonic_32, hss_32) = words_moved(32);
    let ratio_8 = bitonic_8 as f64 / hss_8 as f64;
    let ratio_32 = bitonic_32 as f64 / hss_32 as f64;
    assert!(ratio_8 > 2.0, "bitonic/hss volume ratio at p=8 is only {ratio_8}");
    assert!(ratio_32 > ratio_8, "ratio did not grow with p: {ratio_8} -> {ratio_32}");
}

#[test]
fn analytic_and_measured_sample_sizes_agree_in_order_of_magnitude() {
    // Cross-check hss-analysis against the executed algorithm: the measured
    // HSS constant-oversampling sample should be within a small factor of
    // the closed-form O(p log log p / eps) expression.
    let p = 128;
    let eps = 0.05;
    let keys = 1_000;
    let input = KeyDistribution::Uniform.generate_per_rank(p, keys, 13);
    let mut machine = Machine::flat(p);
    let outcome = HssSorter::new(HssConfig { epsilon: eps, ..HssConfig::default() })
        .sort(&mut machine, input);
    let measured = outcome.report.splitters.as_ref().unwrap().total_sample_size as f64;
    let analytic = Algorithm::HssConstantOversampling.sample_size_keys(p, (p * keys) as u64, eps);
    let ratio = measured / analytic;
    assert!(
        (0.1..10.0).contains(&ratio),
        "measured {measured} vs analytic {analytic} (ratio {ratio})"
    );
}
